#include "scenario/scenario.h"

#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>

namespace drlnoc::scenario {

std::string to_string(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kTrace: return "trace";
    case WorkloadKind::kSteady: return "steady";
    case WorkloadKind::kPhased: return "phased";
  }
  return "?";
}

std::string to_string(QosClass cls) {
  switch (cls) {
    case QosClass::kLatencyCritical: return "latency_critical";
    case QosClass::kBestEffort: return "best_effort";
    case QosClass::kBackground: return "background";
  }
  return "?";
}

QosClass parse_qos_class(const std::string& text) {
  if (text == "latency_critical") return QosClass::kLatencyCritical;
  if (text == "best_effort") return QosClass::kBestEffort;
  if (text == "background") return QosClass::kBackground;
  throw std::invalid_argument(
      "scenario: qos must be latency_critical|best_effort|background, got '" +
      text + "'");
}

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("scenario: " + what);
}

void validate_tenant(const TenantSpec& t, int num_nodes, int index) {
  const std::string who = "tenant " + std::to_string(index) + " ('" + t.name +
                          "'): ";
  if (t.name.empty()) fail("tenant " + std::to_string(index) + " has no name");
  if (!(t.start >= 0.0) || !std::isfinite(t.start)) {
    fail(who + "start must be finite and >= 0");
  }
  if (!(t.stop > t.start)) fail(who + "stop must be > start");

  std::set<noc::NodeId> seen;
  for (noc::NodeId n : t.nodes) {
    if (n < 0 || n >= num_nodes) {
      fail(who + "node " + std::to_string(n) + " out of range (fabric has " +
           std::to_string(num_nodes) + " nodes)");
    }
    if (!seen.insert(n).second) {
      fail(who + "node " + std::to_string(n) + " listed twice");
    }
  }

  if (t.qos == QosClass::kLatencyCritical) {
    if (!(t.p95_target > 0.0) || !std::isfinite(t.p95_target)) {
      fail(who + "latency_critical requires a finite p95_target > 0 "
           "core cycles (got " + std::to_string(t.p95_target) + ")");
    }
  } else if (t.p95_target != 0.0) {
    fail(who + "p95_target is only meaningful for latency_critical tenants");
  }

  switch (t.kind) {
    case WorkloadKind::kTrace: {
      if (!t.trace) fail(who + "trace workload without a trace");
      t.trace->validate();
      if (!(t.rate_scale > 0.0) || !std::isfinite(t.rate_scale)) {
        fail(who + "rate_scale must be finite and > 0 (got " +
             std::to_string(t.rate_scale) + ")");
      }
      const int span = t.nodes.empty() ? num_nodes
                                       : static_cast<int>(t.nodes.size());
      if (t.trace->nodes > span) {
        fail(who + "trace addresses " + std::to_string(t.trace->nodes) +
             " nodes but the placement covers only " + std::to_string(span));
      }
      break;
    }
    case WorkloadKind::kSteady:
      if (!(t.rate > 0.0) || !std::isfinite(t.rate)) {
        fail(who + "rate must be finite and > 0 (got " +
             std::to_string(t.rate) + ")");
      }
      break;
    case WorkloadKind::kPhased:
      if (t.phases.empty() &&
          (!(t.phase_scale > 0.0) || !std::isfinite(t.phase_scale))) {
        fail(who + "phase_scale must be finite and > 0 (got " +
             std::to_string(t.phase_scale) + ")");
      }
      for (const noc::Phase& ph : t.phases) {
        if (!(ph.rate >= 0.0) || !std::isfinite(ph.rate)) {
          fail(who + "phase rate must be finite and >= 0");
        }
        if (!(ph.duration_core_cycles > 0.0)) {
          fail(who + "phase duration must be > 0");
        }
      }
      break;
  }
}

void validate_controller(const ControllerSchedule& c) {
  if (!c.scheduled()) {
    if (!c.policy_file.empty() || !c.policy_blob.empty()) {
      fail("controller policy set without a controller type");
    }
    return;
  }
  if (c.type != "drl" && c.type != "heuristic" && c.type != "static-max" &&
      c.type != "static-min") {
    fail("controller type must be drl|heuristic|static-max|static-min, "
         "got '" + c.type + "'");
  }
  if (c.type == "drl") {
    if (c.policy_blob.empty()) {
      fail("drl controller schedule requires a trained policy "
           "(controller.policy = <file saved with DqnAgent::save>)");
    }
  } else if (!c.policy_file.empty() || !c.policy_blob.empty()) {
    fail("controller policy is only meaningful for drl schedules");
  }
  if (c.epoch_cycles == 0) fail("controller epoch_cycles must be > 0");
  if (c.epochs <= 0) fail("controller epochs must be > 0");
}

}  // namespace

int Scenario::num_declared_tenants() const {
  int n = 0;
  for (const TenantSpec& t : tenants) {
    if (!t.churned) ++n;
  }
  return n;
}

bool Scenario::has_qos() const {
  for (const TenantSpec& t : tenants) {
    if (t.qos != QosClass::kBestEffort) return true;
  }
  return false;
}

void Scenario::validate() const {
  if (tenants.empty()) fail("no tenants");
  const int num_nodes = net.width * net.height;
  if (num_nodes <= 0) fail("empty fabric");
  if (!(duration >= 0.0) || !std::isfinite(duration)) {
    fail("duration must be finite and >= 0");
  }
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    validate_tenant(tenants[i], num_nodes, static_cast<int>(i));
  }
  validate_controller(controller);
  churn.validate(static_cast<std::size_t>(num_declared_tenants()), duration);
  faults.validate();
  if (faults.enabled()) {
    // Topology-dependent checks, including the fail-fast rejection of
    // cycle-0 link deaths that disconnect the fabric. Building the topology
    // is cheap (a static graph; no routers or channels).
    const auto topo =
        noc::make_topology(net.topology, net.width, net.height);
    faults.validate(*topo);
  }
  if (duration == 0.0) {
    // Without a horizon the run ends when every tenant finishes; an
    // open-ended synthetic tenant would spin to the cycle limit. Looping
    // traces are equally unbounded.
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      const TenantSpec& t = tenants[i];
      const bool bounded_by_trace =
          t.kind == WorkloadKind::kTrace && !t.loop;
      if (!bounded_by_trace && std::isinf(t.stop)) {
        fail("tenant " + std::to_string(i) + " ('" + t.name +
             "') never finishes; set duration= or give it a stop= window");
      }
    }
  }
}

std::vector<noc::NodeId> parse_node_set(const std::string& text,
                                        int num_nodes) {
  std::vector<noc::NodeId> out;
  if (text.empty() || text == "all") return out;
  std::istringstream in(text);
  std::string item;
  std::set<noc::NodeId> seen;
  const auto append = [&](noc::NodeId n) {
    if (!seen.insert(n).second) {
      fail("node " + std::to_string(n) + " listed twice in node set '" +
           text + "'");
    }
    out.push_back(n);
  };
  const auto parse_id = [&](const std::string& s) -> noc::NodeId {
    std::size_t used = 0;
    int v = 0;
    try {
      v = std::stoi(s, &used);
    } catch (const std::exception&) {
      fail("bad node id '" + s + "' in node set '" + text + "'");
    }
    if (used != s.size()) {
      fail("bad node id '" + s + "' in node set '" + text + "'");
    }
    if (v < 0 || v >= num_nodes) {
      fail("node " + std::to_string(v) + " out of range in node set '" +
           text + "' (fabric has " + std::to_string(num_nodes) + " nodes)");
    }
    return v;
  };
  while (std::getline(in, item, ',')) {
    if (item.empty()) fail("empty entry in node set '" + text + "'");
    const auto dash = item.find('-');
    if (dash == std::string::npos) {
      append(parse_id(item));
      continue;
    }
    const noc::NodeId lo = parse_id(item.substr(0, dash));
    const noc::NodeId hi = parse_id(item.substr(dash + 1));
    if (hi < lo) fail("inverted range '" + item + "' in node set");
    for (noc::NodeId n = lo; n <= hi; ++n) append(n);
  }
  return out;
}

std::string format_node_set(const std::vector<noc::NodeId>& nodes) {
  if (nodes.empty()) return "all";
  std::ostringstream os;
  std::size_t i = 0;
  while (i < nodes.size()) {
    std::size_t j = i;
    while (j + 1 < nodes.size() && nodes[j + 1] == nodes[j] + 1) ++j;
    if (i > 0) os << ",";
    if (j > i + 1) {
      os << nodes[i] << "-" << nodes[j];
    } else {
      os << nodes[i];
      if (j == i + 1) os << "," << nodes[j];
    }
    i = j + 1;
  }
  return os.str();
}

}  // namespace drlnoc::scenario
