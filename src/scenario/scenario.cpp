#include "scenario/scenario.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <set>
#include <sstream>
#include <stdexcept>

namespace drlnoc::scenario {

std::string to_string(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kTrace: return "trace";
    case WorkloadKind::kSteady: return "steady";
    case WorkloadKind::kPhased: return "phased";
  }
  return "?";
}

std::string to_string(QosClass cls) {
  switch (cls) {
    case QosClass::kLatencyCritical: return "latency_critical";
    case QosClass::kBestEffort: return "best_effort";
    case QosClass::kBackground: return "background";
  }
  return "?";
}

QosClass parse_qos_class(const std::string& text) {
  if (text == "latency_critical") return QosClass::kLatencyCritical;
  if (text == "best_effort") return QosClass::kBestEffort;
  if (text == "background") return QosClass::kBackground;
  throw std::invalid_argument(
      "scenario: qos must be latency_critical|best_effort|background, got '" +
      text + "'");
}

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("scenario: " + what);
}

void validate_tenant(const TenantSpec& t, int num_nodes, int index) {
  const std::string who = "tenant " + std::to_string(index) + " ('" + t.name +
                          "'): ";
  if (t.name.empty()) fail("tenant " + std::to_string(index) + " has no name");
  if (!(t.start >= 0.0) || !std::isfinite(t.start)) {
    fail(who + "start must be finite and >= 0");
  }
  if (!(t.stop > t.start)) fail(who + "stop must be > start");

  std::set<noc::NodeId> seen;
  for (noc::NodeId n : t.nodes) {
    if (n < 0 || n >= num_nodes) {
      fail(who + "node " + std::to_string(n) + " out of range (fabric has " +
           std::to_string(num_nodes) + " nodes)");
    }
    if (!seen.insert(n).second) {
      fail(who + "node " + std::to_string(n) + " listed twice");
    }
  }

  if (t.qos == QosClass::kLatencyCritical) {
    if (!(t.p95_target > 0.0) || !std::isfinite(t.p95_target)) {
      fail(who + "latency_critical requires a finite p95_target > 0 "
           "core cycles (got " + std::to_string(t.p95_target) + ")");
    }
  } else if (t.p95_target != 0.0) {
    fail(who + "p95_target is only meaningful for latency_critical tenants");
  }

  switch (t.kind) {
    case WorkloadKind::kTrace: {
      if (!t.trace) fail(who + "trace workload without a trace");
      t.trace->validate();
      if (!(t.rate_scale > 0.0) || !std::isfinite(t.rate_scale)) {
        fail(who + "rate_scale must be finite and > 0 (got " +
             std::to_string(t.rate_scale) + ")");
      }
      const int span = t.nodes.empty() ? num_nodes
                                       : static_cast<int>(t.nodes.size());
      if (t.trace->nodes > span) {
        fail(who + "trace addresses " + std::to_string(t.trace->nodes) +
             " nodes but the placement covers only " + std::to_string(span));
      }
      break;
    }
    case WorkloadKind::kSteady:
      if (!(t.rate > 0.0) || !std::isfinite(t.rate)) {
        fail(who + "rate must be finite and > 0 (got " +
             std::to_string(t.rate) + ")");
      }
      break;
    case WorkloadKind::kPhased:
      if (t.phases.empty() &&
          (!(t.phase_scale > 0.0) || !std::isfinite(t.phase_scale))) {
        fail(who + "phase_scale must be finite and > 0 (got " +
             std::to_string(t.phase_scale) + ")");
      }
      for (const noc::Phase& ph : t.phases) {
        if (!(ph.rate >= 0.0) || !std::isfinite(ph.rate)) {
          fail(who + "phase rate must be finite and >= 0");
        }
        if (!(ph.duration_core_cycles > 0.0)) {
          fail(who + "phase duration must be > 0");
        }
      }
      break;
  }
}

void validate_controller(const ControllerSchedule& c) {
  if (!c.scheduled()) {
    if (!c.policy_file.empty() || !c.policy_blob.empty()) {
      fail("controller policy set without a controller type");
    }
    return;
  }
  if (c.type != "drl" && c.type != "heuristic" && c.type != "static-max" &&
      c.type != "static-min") {
    fail("controller type must be drl|heuristic|static-max|static-min, "
         "got '" + c.type + "'");
  }
  if (c.type == "drl") {
    if (c.policy_blob.empty()) {
      fail("drl controller schedule requires a trained policy "
           "(controller.policy = <file saved with DqnAgent::save>)");
    }
  } else if (!c.policy_file.empty() || !c.policy_blob.empty()) {
    fail("controller policy is only meaningful for drl schedules");
  }
  if (!c.policy_pin.empty()) {
    if (c.type != "drl") fail("controller pin is only meaningful for drl "
                              "schedules");
    bool hex16 = c.policy_pin.size() == 16;
    for (char ch : c.policy_pin) {
      hex16 = hex16 && ((ch >= '0' && ch <= '9') || (ch >= 'a' && ch <= 'f'));
    }
    if (!hex16) {
      fail("controller pin '" + c.policy_pin +
           "' is not a policy fingerprint (expected 16 lowercase hex "
           "digits)");
    }
  }
  if (c.epoch_cycles == 0) fail("controller epoch_cycles must be > 0");
  if (c.epochs <= 0) fail("controller epochs must be > 0");
}

}  // namespace

int Scenario::num_declared_tenants() const {
  int n = 0;
  for (const TenantSpec& t : tenants) {
    if (!t.churned) ++n;
  }
  return n;
}

bool Scenario::has_qos() const {
  for (const TenantSpec& t : tenants) {
    if (t.qos != QosClass::kBestEffort) return true;
  }
  return false;
}

void Scenario::validate() const {
  if (tenants.empty()) fail("no tenants");
  const int num_nodes = net.width * net.height;
  if (num_nodes <= 0) fail("empty fabric");
  if (!(duration >= 0.0) || !std::isfinite(duration)) {
    fail("duration must be finite and >= 0");
  }
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    validate_tenant(tenants[i], num_nodes, static_cast<int>(i));
  }
  validate_controller(controller);
  churn.validate(static_cast<std::size_t>(num_declared_tenants()), duration);
  faults.validate();
  if (faults.enabled()) {
    // Topology-dependent checks, including the fail-fast rejection of
    // cycle-0 link deaths that disconnect the fabric. Building the topology
    // is cheap (a static graph; no routers or channels).
    const auto topo =
        noc::make_topology(net.topology, net.width, net.height);
    faults.validate(*topo);
  }
  if (duration == 0.0) {
    // Without a horizon the run ends when every tenant finishes; an
    // open-ended synthetic tenant would spin to the cycle limit. Looping
    // traces are equally unbounded.
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      const TenantSpec& t = tenants[i];
      const bool bounded_by_trace =
          t.kind == WorkloadKind::kTrace && !t.loop;
      if (!bounded_by_trace && std::isinf(t.stop)) {
        fail("tenant " + std::to_string(i) + " ('" + t.name +
             "') never finishes; set duration= or give it a stop= window");
      }
    }
  }
}

std::vector<noc::NodeId> parse_node_set(const std::string& text,
                                        int num_nodes) {
  std::vector<noc::NodeId> out;
  if (text.empty() || text == "all") return out;
  std::istringstream in(text);
  std::string item;
  std::set<noc::NodeId> seen;
  const auto append = [&](noc::NodeId n) {
    if (!seen.insert(n).second) {
      fail("node " + std::to_string(n) + " listed twice in node set '" +
           text + "'");
    }
    out.push_back(n);
  };
  const auto parse_id = [&](const std::string& s) -> noc::NodeId {
    std::size_t used = 0;
    int v = 0;
    try {
      v = std::stoi(s, &used);
    } catch (const std::exception&) {
      fail("bad node id '" + s + "' in node set '" + text + "'");
    }
    if (used != s.size()) {
      fail("bad node id '" + s + "' in node set '" + text + "'");
    }
    if (v < 0 || v >= num_nodes) {
      fail("node " + std::to_string(v) + " out of range in node set '" +
           text + "' (fabric has " + std::to_string(num_nodes) + " nodes)");
    }
    return v;
  };
  while (std::getline(in, item, ',')) {
    if (item.empty()) fail("empty entry in node set '" + text + "'");
    const auto dash = item.find('-');
    if (dash == std::string::npos) {
      append(parse_id(item));
      continue;
    }
    const noc::NodeId lo = parse_id(item.substr(0, dash));
    const noc::NodeId hi = parse_id(item.substr(dash + 1));
    if (hi < lo) fail("inverted range '" + item + "' in node set");
    for (noc::NodeId n = lo; n <= hi; ++n) append(n);
  }
  return out;
}

namespace {

/// Order-sensitive FNV-1a accumulation. Every field is hashed through a
/// fixed textual rendering with a type tag, so two scenarios collide only
/// when their semantic fields agree — field reordering or adjacent-field
/// concatenation cannot alias (each token is '\0'-terminated).
struct ContentHasher {
  std::uint64_t h = 1469598103934665603ULL;

  void bytes(const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ULL;
    }
    h ^= 0;  // terminator byte
    h *= 1099511628211ULL;
  }
  void str(const std::string& s) { bytes(s); }
  void i64(long long v) { bytes(std::to_string(v)); }
  void u64(std::uint64_t v) { bytes(std::to_string(v)); }
  void f64(double v) {
    // Shortest round-trippable rendering; infinities hash as a token.
    if (std::isinf(v)) {
      bytes(v > 0 ? "inf" : "-inf");
      return;
    }
    std::ostringstream os;
    os.precision(17);
    os << v;
    bytes(os.str());
  }
};

}  // namespace

std::uint64_t content_hash(const Scenario& scenario) {
  ContentHasher hh;
  hh.str("drlsc-content-1");  // hash-schema version
  hh.str(scenario.name);

  const noc::NetworkParams& np = scenario.net;
  hh.str(np.topology);
  hh.i64(np.width);
  hh.i64(np.height);
  hh.str(np.routing);
  hh.i64(np.max_vcs);
  hh.i64(np.max_depth);
  hh.i64(np.flits_per_packet);
  hh.u64(np.link_latency);
  hh.i64(np.pipeline_stages);
  hh.u64(np.seed);
  hh.i64(np.initial_config.active_vcs);
  hh.i64(np.initial_config.active_depth);
  hh.i64(np.initial_config.dvfs_level);

  // Declared tenants only: churned tenants are a pure function of the
  // [churn] block (hashed below), and hashing them would make the hash
  // depend on whether churn expansion ran before or after hashing.
  for (const TenantSpec& t : scenario.tenants) {
    if (t.churned) continue;
    hh.str("tenant");
    hh.str(t.name);
    hh.str(to_string(t.kind));
    if (t.kind == WorkloadKind::kTrace && t.trace) {
      // Traces are hashed by their summary statistics, not their bytes:
      // cheap, stable across storage format, and specific enough that two
      // different workloads virtually never agree on all six.
      const trace::TraceSummary s = t.trace->summary();
      hh.i64(t.trace->nodes);
      hh.u64(s.records);
      hh.u64(s.roots);
      hh.u64(s.dep_edges);
      hh.f64(s.span);
      hh.u64(s.total_flits);
      hh.f64(t.rate_scale);
      hh.i64(t.loop ? 1 : 0);
    }
    hh.str(t.pattern);
    hh.str(t.process);
    hh.f64(t.rate);
    hh.i64(static_cast<long long>(t.phases.size()));
    for (const noc::Phase& ph : t.phases) {
      hh.str(ph.pattern);
      hh.f64(ph.rate);
      hh.f64(ph.duration_core_cycles);
      hh.str(ph.process);
      hh.i64(ph.flits_per_packet);
    }
    hh.f64(t.phase_scale);
    hh.i64(static_cast<long long>(t.nodes.size()));
    for (noc::NodeId n : t.nodes) hh.i64(n);
    hh.f64(t.start);
    hh.f64(t.stop);
    hh.str(to_string(t.qos));
    hh.f64(t.p95_target);
  }

  hh.f64(scenario.duration);
  hh.u64(scenario.cycle_limit);

  const noc::FaultParams& fp = scenario.faults;
  hh.u64(fp.seed);
  hh.f64(fp.link_fault_rate);
  hh.u64(fp.retry_timeout);
  hh.f64(fp.retry_backoff);
  hh.i64(fp.retry_budget);
  hh.i64(static_cast<long long>(fp.events.size()));
  for (const noc::FaultEvent& e : fp.events) {
    hh.u64(e.at_cycle);
    hh.i64(static_cast<int>(e.kind));
    hh.i64(e.node);
    hh.i64(e.port);
    hh.i64(e.factor);
  }

  const ChurnParams& cp = scenario.churn;
  hh.u64(cp.seed);
  hh.f64(cp.arrival_rate);
  hh.f64(cp.horizon);
  hh.i64(cp.capacity);
  hh.i64(cp.max_arrivals);
  hh.i64(static_cast<long long>(cp.templates.size()));
  for (const ChurnTemplate& t : cp.templates) {
    hh.i64(t.tenant);
    hh.f64(t.weight);
    hh.str(t.lifetime);
    hh.f64(t.lifetime_mean);
    hh.f64(t.lifetime_min);
    hh.f64(t.lifetime_max);
  }
  return hh.h;
}

std::string content_hash_hex(const Scenario& scenario) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(content_hash(scenario)));
  return std::string(buf);
}

std::string format_node_set(const std::vector<noc::NodeId>& nodes) {
  if (nodes.empty()) return "all";
  std::ostringstream os;
  std::size_t i = 0;
  while (i < nodes.size()) {
    std::size_t j = i;
    while (j + 1 < nodes.size() && nodes[j + 1] == nodes[j] + 1) ++j;
    if (i > 0) os << ",";
    if (j > i + 1) {
      os << nodes[i] << "-" << nodes[j];
    } else {
      os << nodes[i];
      if (j == i + 1) os << "," << nodes[j];
    }
    i = j + 1;
  }
  return os.str();
}

}  // namespace drlnoc::scenario
