#include "scenario/composite_workload.h"

#include <cassert>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace drlnoc::scenario {

CompositeWorkload::CompositeWorkload(int num_nodes,
                                     std::vector<TenantBinding> bindings)
    : tenants_(std::move(bindings)),
      sources_(static_cast<std::size_t>(num_nodes)),
      emitted_(tenants_.size(), 0),
      delivered_(tenants_.size(), 0) {
  if (num_nodes <= 0) {
    throw std::invalid_argument("CompositeWorkload: empty fabric");
  }
  if (tenants_.empty()) {
    throw std::invalid_argument("CompositeWorkload: no tenants");
  }
  local_of_.resize(tenants_.size());
  for (std::size_t ti = 0; ti < tenants_.size(); ++ti) {
    TenantBinding& b = tenants_[ti];
    if (!b.injector) {
      throw std::invalid_argument("CompositeWorkload: tenant " +
                                  std::to_string(ti) + " has no injector");
    }
    if (b.remap && b.nodes.empty()) {
      throw std::invalid_argument("CompositeWorkload: tenant " +
                                  std::to_string(ti) +
                                  " remaps but lists no nodes");
    }
    if (b.nodes.empty()) {
      for (int n = 0; n < num_nodes; ++n) {
        sources_[static_cast<std::size_t>(n)].push_back(static_cast<int>(ti));
      }
      continue;
    }
    if (b.remap) {
      local_of_[ti].assign(static_cast<std::size_t>(num_nodes),
                           noc::kInvalidNode);
    }
    for (std::size_t li = 0; li < b.nodes.size(); ++li) {
      const noc::NodeId g = b.nodes[li];
      if (g < 0 || g >= num_nodes) {
        throw std::invalid_argument("CompositeWorkload: tenant " +
                                    std::to_string(ti) + " node " +
                                    std::to_string(g) + " out of range");
      }
      if (b.remap) {
        if (local_of_[ti][static_cast<std::size_t>(g)] != noc::kInvalidNode) {
          throw std::invalid_argument("CompositeWorkload: tenant " +
                                      std::to_string(ti) + " node " +
                                      std::to_string(g) + " listed twice");
        }
        local_of_[ti][static_cast<std::size_t>(g)] =
            static_cast<noc::NodeId>(li);
      }
      sources_[static_cast<std::size_t>(g)].push_back(static_cast<int>(ti));
    }
  }
  // Tenants were appended in id order per node, so every polling list is
  // already ascending — the order-stable merge tiebreak.
}

noc::NodeId CompositeWorkload::generate(noc::NodeId src, double core_time,
                                        util::Rng& rng) {
  assert(pending_tenant_ < 0 && "injection handshake out of order");
  for (int ti : sources_[static_cast<std::size_t>(src)]) {
    TenantBinding& b = tenants_[static_cast<std::size_t>(ti)];
    if (!window_active(b, core_time)) continue;
    const noc::NodeId local_src =
        b.remap ? local_of_[static_cast<std::size_t>(ti)]
                          [static_cast<std::size_t>(src)]
                : src;
    const noc::NodeId dst =
        b.injector->generate(local_src, core_time - b.start, rng);
    if (dst == noc::kInvalidNode) continue;
    pending_tenant_ = ti;
    ++emitted_[static_cast<std::size_t>(ti)];
    if (!b.remap) return dst;
    assert(dst >= 0 && static_cast<std::size_t>(dst) < b.nodes.size());
    return b.nodes[static_cast<std::size_t>(dst)];
  }
  return noc::kInvalidNode;
}

int CompositeWorkload::packet_length_for(noc::NodeId src,
                                         double core_time) const {
  assert(pending_tenant_ >= 0 && "packet_length_for without generate");
  const TenantBinding& b = tenants_[static_cast<std::size_t>(pending_tenant_)];
  const noc::NodeId local_src =
      b.remap ? local_of_[static_cast<std::size_t>(pending_tenant_)]
                        [static_cast<std::size_t>(src)]
              : src;
  return b.injector->packet_length_for(local_src, core_time - b.start);
}

int CompositeWorkload::tenant_for(noc::NodeId /*src*/,
                                  double /*core_time*/) const {
  assert(pending_tenant_ >= 0 && "tenant_for without generate");
  return pending_tenant_;
}

void CompositeWorkload::on_packet_injected(noc::NodeId src,
                                           std::uint64_t packet_id,
                                           double core_time) {
  assert(pending_tenant_ >= 0 && "on_packet_injected without generate");
  const int ti = pending_tenant_;
  pending_tenant_ = -1;
  live_.emplace(packet_id, ti);
  TenantBinding& b = tenants_[static_cast<std::size_t>(ti)];
  const noc::NodeId local_src =
      b.remap ? local_of_[static_cast<std::size_t>(ti)]
                        [static_cast<std::size_t>(src)]
              : src;
  b.injector->on_packet_injected(local_src, packet_id, core_time - b.start);
}

void CompositeWorkload::on_packet_delivered(const noc::PacketRecord& rec) {
  const auto it = live_.find(rec.packet_id);
  if (it == live_.end()) return;  // not ours (e.g. pre-attach warm-up)
  const int ti = it->second;
  live_.erase(it);
  ++delivered_[static_cast<std::size_t>(ti)];
  TenantBinding& b = tenants_[static_cast<std::size_t>(ti)];
  if (!b.remap && b.start == 0.0) {
    b.injector->on_packet_delivered(rec);
    return;
  }
  // Present the record in the child's local node ids and local clock.
  noc::PacketRecord local = rec;
  if (b.remap) {
    const auto& map = local_of_[static_cast<std::size_t>(ti)];
    local.src = map[static_cast<std::size_t>(rec.src)];
    local.dst = map[static_cast<std::size_t>(rec.dst)];
  }
  local.inject_time = rec.inject_time - b.start;
  local.eject_time = rec.eject_time - b.start;
  b.injector->on_packet_delivered(local);
}

bool CompositeWorkload::quiescent(double core_time) const {
  for (const TenantBinding& b : tenants_) {
    // A finished non-looping trace is quiet; otherwise a tenant is quiet
    // only once its window (capped by the horizon) has passed — after that
    // generate() can never fire for it again.
    if (b.trace != nullptr && !b.trace->params().loop && b.trace->done()) {
      continue;
    }
    const double end = b.stop < horizon_ ? b.stop : horizon_;
    if (core_time < end) return false;
  }
  return true;
}

std::string CompositeWorkload::name() const {
  std::ostringstream os;
  os << "composite[";
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    os << (i ? "+" : "") << tenants_[i].name;
  }
  os << "]";
  return os.str();
}

}  // namespace drlnoc::scenario
