// Tenant churn: a seeded stochastic arrival/departure process that turns a
// handful of declared tenant *templates* into a population of concrete
// tenant instances with [start, stop) activity windows — the production
// multi-tenancy shape, where tenants come and go instead of being scripted.
//
// The model is expanded ONCE, deterministically, at scenario load time
// (`expand_churn`): arrivals follow a Poisson process, each arrival clones a
// weighted template and draws a lifetime from that template's distribution,
// and an admission queue with a capacity cap delays starts while the fabric
// is full (FIFO: an arrival that finds `capacity` tenants active starts when
// the earliest of them departs). All randomness comes from a dedicated
// splitmix64-derived stream seeded by `ChurnParams::seed` — no util::Rng is
// constructed and no traffic RNG is touched, so scenarios without [churn]
// are bit-identical to a build without this file, and churned scenarios are
// bit-identical at any --jobs count (the expansion happens before any
// simulation state exists).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace drlnoc::scenario {

struct Scenario;

/// One churn template: which declared tenant arrivals clone, how likely this
/// template is relative to its siblings, and how long its instances live.
struct ChurnTemplate {
  int tenant = -1;     ///< index of the declared tenant this clones
  double weight = 1.0; ///< relative selection probability (> 0)
  /// Lifetime distribution: "exponential" (mean = lifetime_mean),
  /// "fixed" (always lifetime_mean), or "uniform" ([lifetime_min,
  /// lifetime_max]). Lifetimes are core cycles.
  std::string lifetime = "exponential";
  double lifetime_mean = 0.0;
  double lifetime_min = 0.0;
  double lifetime_max = 0.0;
};

/// The `[churn]` block of a `.drlsc` scenario. `arrival_rate > 0` enables
/// the model; a default-constructed ChurnParams is inert and serialises to
/// nothing, so churn-free scenarios stay byte-identical.
struct ChurnParams {
  std::uint64_t seed = 1;
  /// Expected tenant arrivals per core cycle (Poisson process); 0 disables.
  double arrival_rate = 0.0;
  /// Arrivals are generated over [0, horizon) core cycles; 0 means "use the
  /// scenario's duration" (which must then be finite and > 0).
  double horizon = 0.0;
  /// Maximum concurrently active churned tenants; arrivals beyond it queue
  /// (FIFO) until a slot frees. 0 = unlimited (no queueing).
  int capacity = 0;
  /// Safety cap on generated arrivals, so a mistyped rate cannot expand a
  /// scenario into millions of tenants.
  int max_arrivals = 4096;
  std::vector<ChurnTemplate> templates;

  bool enabled() const { return arrival_rate > 0.0; }

  /// Throws std::invalid_argument on malformed parameters: nonfinite or
  /// negative rates, no templates, template tenant indices outside the
  /// declared (non-churned) tenants, nonpositive weights, unknown lifetime
  /// distributions or out-of-range lifetime parameters, no finite horizon.
  /// `declared_tenants` is the number of hand-declared tenants;
  /// `scenario_duration` resolves a zero horizon.
  void validate(std::size_t declared_tenants, double scenario_duration) const;
};

/// One expanded arrival, exposed for tests and `describe` tooling.
struct ChurnInstance {
  int template_index = 0;
  double arrival = 0.0;  ///< Poisson arrival time (core cycles)
  double start = 0.0;    ///< admission time (>= arrival under a capacity cap)
  double stop = 0.0;     ///< start + drawn lifetime
};

/// Pure expansion of the arrival/admission process — the tenant windows a
/// given ChurnParams produces, independent of any Scenario. Instances whose
/// admission would begin at or after the horizon are dropped (they queued
/// past the churn window).
std::vector<ChurnInstance> expand_churn_windows(const ChurnParams& churn,
                                                double scenario_duration);

/// Expands `scenario.churn` into concrete tenants appended to
/// `scenario.tenants` (each a clone of its template with the instance's
/// window, `churned = true`, and a "name@seq" name). Previously expanded
/// instances are removed first, so the call is idempotent. No-op when churn
/// is disabled. Throws like ChurnParams::validate on bad parameters.
void expand_churn(Scenario& scenario);

}  // namespace drlnoc::scenario
