#include "scenario/runtime.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/controller.h"
#include "core/env_noc.h"
#include "nn/layers.h"
#include "noc/topology.h"
#include "noc/traffic.h"
#include "rl/dqn.h"
#include "rl/policy_io.h"
#include "util/log.h"

namespace drlnoc::scenario {

std::unique_ptr<noc::Network> build_network(const Scenario& scenario) {
  auto net = std::make_unique<noc::Network>(scenario.net);
  // Fault-free scenarios never attach a model, keeping the stepping hot
  // path (and every golden determinism hash) bit-identical to a build
  // without the fault layer.
  if (scenario.faults.enabled()) net->set_fault_model(scenario.faults);
  return net;
}

std::unique_ptr<CompositeWorkload> build_workload(const Scenario& scenario,
                                                  const noc::Topology& topo) {
  // Callers (the loader, the env, run_scenario) validate once up front;
  // re-validating here would re-walk every trace record on each RL episode
  // reset.
  if (topo.num_nodes() < scenario.net.width * scenario.net.height) {
    throw std::invalid_argument(
        "scenario: topology smaller than the scenario's fabric");
  }
  std::vector<TenantBinding> bindings;
  bindings.reserve(scenario.tenants.size());
  for (const TenantSpec& t : scenario.tenants) {
    TenantBinding b;
    b.name = t.name;
    b.nodes = t.nodes;
    b.start = t.start;
    b.stop = t.stop;
    switch (t.kind) {
      case WorkloadKind::kTrace: {
        trace::TraceWorkloadParams tw;
        tw.rate_scale = t.rate_scale;
        tw.loop = t.loop;
        auto child = std::make_unique<trace::TraceWorkload>(t.trace, tw);
        b.trace = child.get();
        // A placement list puts trace endpoint i on nodes[i]; without one
        // the trace addresses fabric ids directly.
        b.remap = !t.nodes.empty();
        b.injector = std::move(child);
        break;
      }
      case WorkloadKind::kSteady:
        b.injector = std::make_unique<noc::SteadyWorkload>(
            noc::SteadyWorkload::make(topo, t.pattern, t.rate, t.process));
        break;
      case WorkloadKind::kPhased:
        b.injector = std::make_unique<noc::PhasedWorkload>(
            topo, t.phases.empty()
                      ? noc::PhasedWorkload::standard_phases(topo,
                                                             t.phase_scale)
                      : t.phases);
        break;
    }
    bindings.push_back(std::move(b));
  }
  return std::make_unique<CompositeWorkload>(topo.num_nodes(),
                                             std::move(bindings));
}

double peak_offered_rate(const Scenario& scenario) {
  double peak = 0.0;
  std::unique_ptr<noc::Topology> topo;  // built lazily for standard phases
  for (const TenantSpec& t : scenario.tenants) {
    switch (t.kind) {
      case WorkloadKind::kTrace:
        peak = std::max(peak,
                        std::clamp(t.trace->summary().offered_rate *
                                       t.rate_scale,
                                   0.01, 0.5));
        break;
      case WorkloadKind::kSteady:
        peak = std::max(peak, t.rate);
        break;
      case WorkloadKind::kPhased: {
        std::vector<noc::Phase> phases = t.phases;
        if (phases.empty()) {
          if (!topo) {
            topo = noc::make_topology(scenario.net.topology,
                                      scenario.net.width,
                                      scenario.net.height);
          }
          phases = noc::PhasedWorkload::standard_phases(*topo, t.phase_scale);
        }
        for (const noc::Phase& ph : phases) peak = std::max(peak, ph.rate);
        break;
      }
    }
  }
  return peak;
}

ScenarioRunResult run_scenario(noc::Network& net, CompositeWorkload& workload,
                               const ScenarioRunParams& params) {
  if (params.duration > 0.0) workload.set_horizon(params.duration);
  net.set_tenant_tracking(workload.num_tenants());
  ScenarioRunResult out;
  while (out.cycles < params.cycle_limit &&
         !(workload.quiescent(net.core_time()) && net.drained())) {
    net.step(&workload);
    ++out.cycles;
  }
  out.completed = workload.quiescent(net.core_time()) && net.drained();
  out.stats = net.drain_epoch_stats();
  return out;
}

ScenarioRunResult run_scenario(const Scenario& scenario) {
  scenario.validate();
  auto net = build_network(scenario);
  auto workload = build_workload(scenario, net->topology());
  ScenarioRunParams p;
  p.cycle_limit = scenario.cycle_limit;
  p.duration = scenario.duration;
  return run_scenario(*net, *workload, p);
}

std::unique_ptr<core::Controller> build_scheduled_controller(
    const Scenario& scenario, const core::NocConfigEnv& env) {
  const ControllerSchedule& ctl = scenario.controller;
  if (!ctl.scheduled()) {
    throw std::invalid_argument(
        "scenario: no controller schedule (add a [controller] block)");
  }
  if (ctl.type == "static-max") {
    return core::StaticController::maximal(env.actions());
  }
  if (ctl.type == "static-min") {
    return core::StaticController::minimal(env.actions());
  }
  if (ctl.type == "heuristic") {
    core::HeuristicParams hp;
    hp.num_nodes = scenario.net.width * scenario.net.height;
    return std::make_unique<core::HeuristicController>(env.actions(), hp);
  }
  if (ctl.type == "drl") {
    // Pin check first: it is a pure byte comparison, so a wrong policy
    // file is rejected before any parsing can muddy the message.
    if (!ctl.policy_pin.empty()) {
      const std::string fp = rl::policy_fingerprint(ctl.policy_blob);
      if (fp != ctl.policy_pin) {
        throw std::invalid_argument(
            "scenario: controller policy fingerprint " + fp +
            " does not match the pinned version " + ctl.policy_pin +
            " (the policy file changed since it was pinned)");
      }
    }
    // Probe the policy's architecture first for a diagnosable mismatch
    // (DqnAgent::load_weights would adopt whatever the blob holds).
    // Accepts drlpol checkpoints and legacy bare mlp blobs alike.
    rl::PolicyCheckpoint ckpt;
    try {
      ckpt = rl::read_policy_blob(ctl.policy_blob);
    } catch (const std::exception& e) {
      throw std::invalid_argument(
          "scenario: controller policy is not a DqnAgent::save artifact (" +
          std::string(e.what()) + ")");
    }
    if (ckpt.net.input_size() != env.state_size() ||
        ckpt.net.output_size() !=
            static_cast<std::size_t>(env.num_actions())) {
      throw std::invalid_argument(
          "scenario: controller policy expects state " +
          std::to_string(ckpt.net.input_size()) + " / actions " +
          std::to_string(ckpt.net.output_size()) +
          " but the environment has state " +
          std::to_string(env.state_size()) + " / actions " +
          std::to_string(env.num_actions()) +
          " (was the policy trained with the same QoS annotations?)");
    }
    // Scenario-hash provenance is advisory: fleets legitimately evaluate
    // one policy across scenario variants, so a mismatch warns but runs.
    if (ckpt.header && !ckpt.header->scenario_hash.empty()) {
      const std::string here = content_hash_hex(scenario);
      if (ckpt.header->scenario_hash != here) {
        LOG_WARN << "policy '" << ctl.policy_file << "' was trained on "
                 << "scenario " << ckpt.header->scenario_hash
                 << " but is serving scenario " << here
                 << " ('" << scenario.name << "')";
      }
    }
    auto agent = std::make_unique<rl::DqnAgent>(
        env.state_size(), env.num_actions(), rl::DqnParams{});
    // Install the probed network itself, so the weights that were
    // dimension-checked are exactly the weights that run.
    agent->load_weights(std::move(ckpt.net));
    return std::make_unique<core::OwningDrlController>(
        env.actions(), std::move(agent), "drl[" + ctl.policy_file + "]");
  }
  throw std::invalid_argument("scenario: unknown controller type '" +
                              ctl.type + "'");
}

ScheduledRunResult run_scheduled(const Scenario& scenario,
                                 obs::FlightRecorder* recorder,
                                 obs::NetworkMetrics* metrics) {
  scenario.validate();
  core::NocEnvParams ep;
  ep.scenario = std::make_shared<Scenario>(scenario);
  ep.net.seed = scenario.net.seed;  // standalone runs use the scenario seed
  ep.epoch_cycles = scenario.controller.epoch_cycles;
  ep.epochs_per_episode = scenario.controller.epochs;
  ep.recorder = recorder;
  ep.metrics = metrics;
  core::NocConfigEnv env(ep);
  const auto controller = build_scheduled_controller(scenario, env);
  ScheduledRunResult out;
  out.episode = core::evaluate(env, *controller);
  out.power_ref_mw = env.power_ref_mw();
  return out;
}

std::vector<TenantReport> tenant_reports(const Scenario& scenario,
                                         const noc::EpochStats& stats) {
  if (stats.tenants.size() != scenario.tenants.size()) {
    throw std::invalid_argument(
        "tenant_reports: epoch has no per-tenant slices for this scenario "
        "(was tenant tracking enabled?)");
  }
  std::uint64_t total_flits = 0;
  for (const noc::TenantEpochStats& ts : stats.tenants) {
    total_flits += ts.flits_ejected;
  }
  const double node_cycles =
      stats.core_cycles *
      static_cast<double>(scenario.net.width * scenario.net.height);
  std::vector<TenantReport> out;
  out.reserve(stats.tenants.size());
  for (std::size_t i = 0; i < stats.tenants.size(); ++i) {
    const noc::TenantEpochStats& ts = stats.tenants[i];
    TenantReport r;
    r.name = scenario.tenants[i].name;
    r.packets_offered = ts.packets_offered;
    r.packets_received = ts.packets_received;
    r.flits_ejected = ts.flits_ejected;
    r.avg_latency = ts.avg_latency;
    r.p95_latency = ts.p95_latency;
    r.throughput = node_cycles > 0.0
                       ? static_cast<double>(ts.packets_received) / node_cycles
                       : 0.0;
    r.energy_share_pj =
        total_flits > 0
            ? stats.total_energy_pj() *
                  (static_cast<double>(ts.flits_ejected) /
                   static_cast<double>(total_flits))
            : 0.0;
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace drlnoc::scenario
