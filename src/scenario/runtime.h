// Scenario runtime: turns a Scenario description into live simulation
// objects (Network + CompositeWorkload), runs it to completion with
// per-tenant accounting, derives per-tenant reports from epoch statistics,
// and executes scenario-level controller schedules ([controller] blocks) so
// `scenarioctl run` can replay controller-vs-workload paper rows without
// the bench binaries. This is the layer scenarioctl, traffic_explorer and
// the multi-tenant benches share.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "scenario/composite_workload.h"
#include "scenario/scenario.h"

namespace drlnoc::obs {
class FlightRecorder;
class NetworkMetrics;
}  // namespace drlnoc::obs

namespace drlnoc::scenario {

/// Builds the scenario's fabric (topology/seed/etc. from `scenario.net`).
std::unique_ptr<noc::Network> build_network(const Scenario& scenario);

/// Builds the merged injector for `scenario` over `topo` (the fabric's
/// topology — synthetic tenants draw destinations from it). Tenant ids are
/// the declaration indices. The scenario must already be validated (the
/// loader, the env, and run_scenario(Scenario) all do so); this runs on
/// every RL episode reset and skips the O(records) re-walk.
std::unique_ptr<CompositeWorkload> build_workload(const Scenario& scenario,
                                                  const noc::Topology& topo);

/// Peak synthetic-equivalent offered rate across tenants (packets/node/
/// core-cycle); the scenario counterpart of the phased workload's busiest
/// phase, used to calibrate the reward's power normaliser.
double peak_offered_rate(const Scenario& scenario);

struct ScenarioRunParams {
  std::uint64_t cycle_limit = 2000000;  ///< router-cycle safety limit
  /// Run horizon in core cycles (caps every tenant window); 0 = run until
  /// every tenant finishes.
  double duration = 0.0;
};

struct ScenarioRunResult {
  noc::EpochStats stats;       ///< whole-run window, incl. per-tenant slices
  bool completed = false;      ///< all tenants quiet and fabric drained
  std::uint64_t cycles = 0;    ///< router cycles consumed
};

/// Steps `net` under `workload` until every tenant is quiet and the fabric
/// drains (or the cycle limit trips). Enables per-tenant tracking on `net`.
ScenarioRunResult run_scenario(noc::Network& net, CompositeWorkload& workload,
                               const ScenarioRunParams& params = {});

/// Convenience: build network + workload from the scenario and run it with
/// the scenario's duration/cycle_limit.
ScenarioRunResult run_scenario(const Scenario& scenario);

/// Human/JSON-facing per-tenant slice derived from one epoch window.
struct TenantReport {
  std::string name;
  std::uint64_t packets_offered = 0;
  std::uint64_t packets_received = 0;
  std::uint64_t flits_ejected = 0;
  double avg_latency = 0.0;     ///< core cycles, measured deliveries
  double p95_latency = 0.0;
  double throughput = 0.0;      ///< delivered packets / node / core-cycle
  double energy_share_pj = 0.0; ///< epoch energy attributed by flit share
};

/// Derives per-tenant reports from an epoch's TenantEpochStats (names taken
/// from the scenario's tenants; sizes must match). Energy is attributed
/// proportionally to ejected flits.
std::vector<TenantReport> tenant_reports(const Scenario& scenario,
                                         const noc::EpochStats& stats);

// --- controller schedules ---------------------------------------------------

/// Builds the controller named by `scenario.controller` against `env`'s
/// action space. DRL schedules deserialize the policy blob (DqnAgent::save
/// output) and validate its dimensions against the environment. Throws
/// std::invalid_argument when no schedule is set or the policy does not fit
/// the environment's state/action sizes.
std::unique_ptr<core::Controller> build_scheduled_controller(
    const Scenario& scenario, const core::NocConfigEnv& env);

/// Result of running a scenario under its controller schedule.
struct ScheduledRunResult {
  core::EpisodeResult episode;  ///< per-tenant summaries incl. SLO hit rates
  double power_ref_mw = 0.0;    ///< the reward's auto-calibrated normalizer
};

/// Runs the scenario under its [controller] schedule: `controller.epochs`
/// epochs of `controller.epoch_cycles` router cycles, the scheduled
/// controller reconfiguring the fabric between epochs, per-tenant QoS
/// objectives active when the scenario declares them. Optional (non-owning)
/// observability taps are attached to the fabric on every episode reset.
ScheduledRunResult run_scheduled(const Scenario& scenario,
                                 obs::FlightRecorder* recorder = nullptr,
                                 obs::NetworkMetrics* metrics = nullptr);

}  // namespace drlnoc::scenario
