// Multi-tenant scenario model: one fabric, N tenants, each driving its own
// workload (a dependency-gated trace replay or a synthetic pattern) over its
// own node set and activity window. A Scenario is the complete, reproducible
// description of a multi-tenant experiment — topology, tenants, run horizon —
// loaded from a versioned `.drlsc` file (scenario_io.h) or built in code.
// CompositeWorkload (composite_workload.h) merges the tenants onto a live
// Network deterministically; runtime.h builds and runs whole scenarios.
#pragma once

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "noc/network.h"
#include "noc/workload.h"
#include "scenario/churn.h"
#include "trace/trace.h"

namespace drlnoc::scenario {

/// How a tenant generates traffic.
enum class WorkloadKind {
  kTrace,   ///< dependency-gated replay of a recorded/generated trace
  kSteady,  ///< fixed synthetic pattern + injection process + rate
  kPhased,  ///< phase sequence (explicit phases, or the standard 4-phase mix)
};

std::string to_string(WorkloadKind kind);

/// QoS class of a tenant: how the tenant-aware reward treats its epoch
/// slice (see core/reward.h). QoS annotations never change the generated
/// traffic — only the objective and the agent's observation.
enum class QosClass {
  kLatencyCritical,  ///< protect: p95 SLO target required (p95_target)
  kBestEffort,       ///< default: no extra shaping
  kBackground,       ///< squeeze: energy credit for throttling its traffic
};

std::string to_string(QosClass cls);
/// Parses "latency_critical" | "best_effort" | "background"; throws
/// std::invalid_argument on anything else.
QosClass parse_qos_class(const std::string& text);

/// Scenario-level controller schedule: the controller that reconfigures the
/// fabric when the scenario runs standalone (`scenarioctl run`), so paper
/// rows replay from one `.drlsc` artifact without the bench binaries.
/// `drl` schedules name a trained-policy file (DqnAgent::save output),
/// loaded eagerly like tenant traces so a parsed scenario is self-contained.
struct ControllerSchedule {
  std::string type;  ///< "" = none; drl | heuristic | static-max | static-min
  std::string policy_file;  ///< provenance (drl), relative to the .drlsc
  std::string policy_blob;  ///< trained-policy bytes, loaded eagerly
  /// Optional 16-hex policy fingerprint (`pin` key / `policy_pin=`): when
  /// set, the loaded policy's rl::policy_fingerprint must match exactly or
  /// the run refuses to start — fleets pin the policy version they serve.
  std::string policy_pin;
  std::uint64_t epoch_cycles = 512;  ///< router cycles between decisions
  int epochs = 48;                   ///< decision epochs per scheduled run

  bool scheduled() const { return !type.empty(); }
};

/// One tenant of a scenario.
///
/// Node semantics: `nodes` empty means the whole fabric. For trace tenants a
/// non-empty list is a *placement*: trace endpoint i runs on nodes[i] (the
/// list must cover the trace's node count). For synthetic tenants the list
/// restricts *sources* only — destinations still follow the pattern over the
/// full topology, which is exactly the "background interference" shape.
///
/// Window semantics: the tenant injects only while start <= t < stop (global
/// core time). Children observe a local clock starting at 0 at `start`, so a
/// trace tenant's recorded release times are relative to its window.
struct TenantSpec {
  std::string name = "tenant";
  WorkloadKind kind = WorkloadKind::kSteady;

  // kTrace
  std::shared_ptr<const trace::Trace> trace;  ///< loaded eagerly
  std::string trace_file;  ///< provenance, kept for describe/write
  double rate_scale = 1.0;
  bool loop = false;

  // kSteady / kPhased
  std::string pattern = "uniform";
  std::string process = "bernoulli";
  double rate = 0.05;               ///< packets/node/core-cycle (kSteady)
  std::vector<noc::Phase> phases;   ///< kPhased; empty => standard phases
  double phase_scale = 1.0;         ///< rate scale for the standard phases

  // Placement & activity window.
  std::vector<noc::NodeId> nodes;   ///< empty = all nodes
  double start = 0.0;
  double stop = std::numeric_limits<double>::infinity();

  // QoS (reward shaping + per-tenant observation; no effect on traffic).
  QosClass qos = QosClass::kBestEffort;
  /// p95 latency SLO in core cycles; required (> 0) for latency-critical
  /// tenants and must stay 0 for every other class.
  double p95_target = 0.0;

  /// True for tenants materialised by churn expansion (churn.h) rather than
  /// declared by hand; the writer skips them (they are reproduced from the
  /// [churn] block on load) and churn templates may only reference declared
  /// tenants.
  bool churned = false;
};

/// A complete multi-tenant experiment description.
struct Scenario {
  std::string name = "scenario";
  noc::NetworkParams net{};
  std::vector<TenantSpec> tenants;
  /// Run horizon in core cycles; 0 = run until every tenant finishes (trace
  /// tenants deliver every record, windowed tenants pass their stop time).
  double duration = 0.0;
  /// Router-cycle safety limit for scenario runs.
  std::uint64_t cycle_limit = 2000000;
  /// Optional controller schedule for standalone runs ([controller] block).
  ControllerSchedule controller{};
  /// Optional deterministic fault schedule ([faults] block): transient link
  /// corruption rate, retry policy, and scheduled link-down/slowdown events.
  /// Disabled (all-zero) by default; see noc/faults.h.
  noc::FaultParams faults{};
  /// Optional tenant churn model ([churn] block): a seeded arrival/departure
  /// process expanded deterministically into extra tenants at load time.
  /// Inert by default; see scenario/churn.h.
  ChurnParams churn{};

  int num_tenants() const { return static_cast<int>(tenants.size()); }
  /// Number of hand-declared (non-churned) tenants — the count the writer
  /// serialises and churn templates index into.
  int num_declared_tenants() const;
  /// True when any tenant departs from the default best-effort class; only
  /// then does the RL environment switch reward/features into QoS mode, so
  /// QoS-free scenarios stay bit-identical to pre-QoS behavior.
  bool has_qos() const;

  /// Throws std::invalid_argument on malformed scenarios: no tenants,
  /// nonpositive/nonfinite rates or rate scales, inverted windows, node ids
  /// out of range or duplicated within a tenant, trace placements that do
  /// not cover the trace, traces addressing more nodes than the fabric has,
  /// a scenario with no finite horizon (every tenant open-ended synthetic
  /// and duration 0 would never terminate), QoS targets that contradict the
  /// class (latency-critical without a p95_target, targets on other
  /// classes), a controller schedule with an unknown type / a drl
  /// schedule without a policy, or a fault schedule that is out of range /
  /// whose cycle-0 link deaths disconnect the topology (fail fast instead
  /// of mid-run).
  void validate() const;
};

/// Parses a node-set expression over `num_nodes` fabric nodes:
/// "all" (empty result = whole fabric), or a comma list of ids and
/// inclusive ranges, e.g. "0-15", "3,7,12-14". Order is preserved (it is
/// the trace-placement order); duplicates and out-of-range ids throw.
std::vector<noc::NodeId> parse_node_set(const std::string& text,
                                        int num_nodes);

/// Canonical text of a node set ("all" for empty, ranges recompressed).
std::string format_node_set(const std::vector<noc::NodeId>& nodes);

/// Deterministic 64-bit content hash of a scenario's *semantic* fields —
/// the fabric, declared tenants (traces by summary statistics), horizon,
/// faults, and churn parameters. Excludes the controller block (a policy
/// checkpoint records this hash, and the policy lives in the controller
/// block — including it would be circular) and churn-expanded tenants
/// (derived from [churn], which is hashed). Stable across machines and
/// loads; used as drlpol training-scenario provenance.
std::uint64_t content_hash(const Scenario& scenario);
/// content_hash formatted as 16 lowercase hex digits (drlpol header form).
std::string content_hash_hex(const Scenario& scenario);

}  // namespace drlnoc::scenario
