#include "scenario/scenario_io.h"

#include <cmath>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "trace/trace_io.h"
#include "util/config.h"

namespace drlnoc::scenario {

namespace {

/// Config accessor that remembers every key it served, so the loader can
/// reject unknown (typically misspelled) keys afterwards.
struct TrackedConfig {
  const util::Config& cfg;
  std::set<std::string>* consumed;

  bool has(const std::string& key) const {
    if (cfg.has(key)) consumed->insert(key);
    return cfg.has(key);
  }
  template <typename T>
  T get(const std::string& key, T fallback) const {
    if (cfg.has(key)) consumed->insert(key);
    return cfg.get(key, fallback);
  }
  std::string str(const std::string& key, const std::string& fallback) const {
    return get<std::string>(key, fallback);
  }
};

std::string join_path(const std::string& base_dir, const std::string& path) {
  if (base_dir.empty() || path.empty() || path.front() == '/') return path;
  return base_dir + "/" + path;
}

TenantSpec parse_tenant(const TrackedConfig& c, int index, int num_nodes,
                        const std::string& base_dir) {
  const std::string p = "tenant" + std::to_string(index) + ".";
  TenantSpec t;
  t.name = c.str(p + "name", "tenant" + std::to_string(index));
  const std::string kind = c.str(p + "workload", "steady");
  if (kind == "trace") {
    t.kind = WorkloadKind::kTrace;
  } else if (kind == "steady") {
    t.kind = WorkloadKind::kSteady;
  } else if (kind == "phased") {
    t.kind = WorkloadKind::kPhased;
  } else {
    throw std::invalid_argument("scenario: " + p + "workload must be "
                                "trace|steady|phased, got '" + kind + "'");
  }

  switch (t.kind) {
    case WorkloadKind::kTrace: {
      t.trace_file = c.str(p + "trace", "");
      if (t.trace_file.empty()) {
        throw std::invalid_argument("scenario: " + p +
                                    "trace is required for trace tenants");
      }
      t.trace = std::make_shared<const trace::Trace>(
          trace::TraceReader::read_file(join_path(base_dir, t.trace_file)));
      t.rate_scale = c.get(p + "rate_scale", t.rate_scale);
      t.loop = c.get(p + "loop", t.loop);
      break;
    }
    case WorkloadKind::kSteady:
      t.pattern = c.str(p + "pattern", t.pattern);
      t.process = c.str(p + "process", t.process);
      t.rate = c.get(p + "rate", t.rate);
      break;
    case WorkloadKind::kPhased: {
      t.phase_scale = c.get(p + "phase_scale", t.phase_scale);
      const int phases = c.get(p + "phases", 0);
      for (int k = 0; k < phases; ++k) {
        const std::string pp = p + "phase" + std::to_string(k) + ".";
        noc::Phase ph;
        ph.pattern = c.str(pp + "pattern", ph.pattern);
        ph.rate = c.get(pp + "rate", ph.rate);
        ph.duration_core_cycles =
            c.get(pp + "duration", ph.duration_core_cycles);
        ph.process = c.str(pp + "process", ph.process);
        ph.flits_per_packet = c.get(pp + "flits", ph.flits_per_packet);
        t.phases.push_back(ph);
      }
      break;
    }
  }

  t.nodes = parse_node_set(c.str(p + "nodes", "all"), num_nodes);
  t.start = c.get(p + "start", t.start);
  t.stop = c.get(p + "stop", t.stop);
  if (c.has(p + "qos")) t.qos = parse_qos_class(c.str(p + "qos", ""));
  t.p95_target = c.get(p + "p95_target", t.p95_target);
  return t;
}

noc::FaultParams parse_faults(const TrackedConfig& c) {
  noc::FaultParams f;
  f.seed = static_cast<std::uint64_t>(
      c.get("faults.seed", static_cast<long long>(f.seed)));
  f.link_fault_rate = c.get("faults.link_fault_rate", f.link_fault_rate);
  const long long timeout = c.get("faults.retry_timeout",
                                  static_cast<long long>(f.retry_timeout));
  if (timeout < 1) {
    // Checked before the uint64 cast (same wrap hazard as epoch_cycles).
    throw std::invalid_argument(
        "scenario: faults.retry_timeout must be >= 1, got " +
        std::to_string(timeout));
  }
  f.retry_timeout = static_cast<noc::Cycle>(timeout);
  f.retry_backoff = c.get("faults.retry_backoff", f.retry_backoff);
  f.retry_budget = c.get("faults.retry_budget", f.retry_budget);
  const int events = c.get("faults.events", 0);
  if (events < 0) {
    throw std::invalid_argument("scenario: faults.events must be >= 0");
  }
  for (int k = 0; k < events; ++k) {
    const std::string ep = "faults.event" + std::to_string(k) + ".";
    noc::FaultEvent e;
    const long long at = c.get(ep + "at_cycle", 0LL);
    if (at < 0) {
      throw std::invalid_argument("scenario: " + ep +
                                  "at_cycle must be >= 0");
    }
    e.at_cycle = static_cast<noc::Cycle>(at);
    const std::string kind = c.str(ep + "kind", "link_down");
    if (kind == "link_down") {
      e.kind = noc::FaultEvent::Kind::kLinkDown;
    } else if (kind == "slowdown") {
      e.kind = noc::FaultEvent::Kind::kSlowdown;
    } else {
      throw std::invalid_argument("scenario: " + ep +
                                  "kind must be link_down|slowdown, got '" +
                                  kind + "'");
    }
    e.node = c.get(ep + "node", e.node);
    e.port = c.get(ep + "port", e.port);
    e.factor = c.get(ep + "factor", e.factor);
    f.events.push_back(e);
  }
  // Range/shape checks fire here so a bad file is rejected with the faults:
  // message even before Scenario::validate runs.
  f.validate();
  return f;
}

ChurnParams parse_churn(const TrackedConfig& c) {
  ChurnParams ch;
  ch.seed = static_cast<std::uint64_t>(
      c.get("churn.seed", static_cast<long long>(ch.seed)));
  ch.arrival_rate = c.get("churn.arrival_rate", ch.arrival_rate);
  ch.horizon = c.get("churn.horizon", ch.horizon);
  ch.capacity = c.get("churn.capacity", ch.capacity);
  ch.max_arrivals = c.get("churn.max_arrivals", ch.max_arrivals);
  const int templates = c.get("churn.templates", 0);
  if (templates < 0) {
    throw std::invalid_argument("scenario: churn.templates must be >= 0");
  }
  for (int k = 0; k < templates; ++k) {
    const std::string tp = "churn.template" + std::to_string(k) + ".";
    ChurnTemplate t;
    t.tenant = c.get(tp + "tenant", t.tenant);
    t.weight = c.get(tp + "weight", t.weight);
    t.lifetime = c.str(tp + "lifetime", t.lifetime);
    t.lifetime_mean = c.get(tp + "lifetime_mean", t.lifetime_mean);
    t.lifetime_min = c.get(tp + "lifetime_min", t.lifetime_min);
    t.lifetime_max = c.get(tp + "lifetime_max", t.lifetime_max);
    ch.templates.push_back(t);
  }
  return ch;
}

ControllerSchedule parse_controller(const TrackedConfig& c,
                                    const std::string& base_dir) {
  ControllerSchedule ctl;
  ctl.type = c.str("controller.type", "");
  ctl.policy_file = c.str("controller.policy", "");
  ctl.policy_pin = c.str("controller.pin", "");
  const long long cycles = c.get("controller.epoch_cycles",
                                 static_cast<long long>(ctl.epoch_cycles));
  if (cycles <= 0) {
    // Checked before the uint64 cast: a negative value would wrap to ~2^64
    // and pass the ==0 validation, hanging scheduled runs.
    throw std::invalid_argument(
        "scenario: controller.epoch_cycles must be > 0, got " +
        std::to_string(cycles));
  }
  ctl.epoch_cycles = static_cast<std::uint64_t>(cycles);
  ctl.epochs = c.get("controller.epochs", ctl.epochs);
  if (ctl.type.empty() && !ctl.policy_file.empty()) {
    throw std::invalid_argument(
        "scenario: controller.policy set without controller.type");
  }
  if (!ctl.policy_file.empty()) {
    const std::string path = join_path(base_dir, ctl.policy_file);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      throw std::invalid_argument(
          "scenario: controller policy file not found: " + path);
    }
    std::stringstream ss;
    ss << in.rdbuf();
    ctl.policy_blob = ss.str();
  }
  return ctl;
}

}  // namespace

Scenario ScenarioReader::read_text(const std::string& text,
                                   const std::string& base_dir) {
  return read_text(text, base_dir, {});
}

Scenario ScenarioReader::read_text(
    const std::string& text, const std::string& base_dir,
    const std::map<std::string, std::string>& overrides) {
  // Scanned line by line (not via Config::from_text) so every key remembers
  // its 1-based source line: typed-getter errors and the unknown-key check
  // below can then cite "(line N)" alongside the key name.
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  bool magic_seen = false;
  std::set<std::string> seen_sections;
  std::string section_prefix;
  util::Config cfg;
  while (std::getline(in, line)) {
    ++lineno;
    std::string stripped = line;
    const auto hash = stripped.find('#');
    if (hash != std::string::npos) stripped.erase(hash);
    const auto b = stripped.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;  // blank / comment-only line
    const auto e = stripped.find_last_not_of(" \t\r");
    stripped = stripped.substr(b, e - b + 1);
    if (!magic_seen) {
      // The magic line is not a key=value pair; check it by hand.
      std::istringstream ls(stripped);
      std::string magic;
      int version = 0;
      if (!(ls >> magic >> version) || magic != "drlsc") {
        throw std::runtime_error(
            "scenario: missing magic line (expected 'drlsc 1')");
      }
      if (version != kScenarioFormatVersion) {
        throw std::runtime_error("scenario: unsupported format version " +
                                 std::to_string(version));
      }
      magic_seen = true;
      continue;
    }
    // Section headers: `[controller]` / `[faults]` / `[churn]` prefix every
    // following key with `controller.` / `faults.` / `churn.` so the blocks
    // read like INI sections. Duplicates and unknown sections are rejected
    // like unknown keys.
    if (stripped.front() == '[') {
      if (stripped != "[controller]" && stripped != "[faults]" &&
          stripped != "[churn]") {
        throw std::invalid_argument("scenario: unknown section '" + stripped +
                                    "' (line " + std::to_string(lineno) + ")");
      }
      if (!seen_sections.insert(stripped).second) {
        throw std::invalid_argument("scenario: duplicate " + stripped +
                                    " block (line " + std::to_string(lineno) +
                                    ")");
      }
      section_prefix = stripped.substr(1, stripped.size() - 2) + ".";
      continue;
    }
    const auto eq = stripped.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("scenario: bad config line " +
                                  std::to_string(lineno) + ": " + stripped);
    }
    auto trim = [](std::string s) {
      const auto sb = s.find_first_not_of(" \t");
      if (sb == std::string::npos) return std::string();
      const auto se = s.find_last_not_of(" \t");
      return s.substr(sb, se - sb + 1);
    };
    const std::string key = section_prefix + trim(stripped.substr(0, eq));
    cfg.set(key, trim(stripped.substr(eq + 1)));
    cfg.set_line(key, lineno);
  }
  if (!magic_seen) {
    throw std::runtime_error(
        "scenario: missing magic line (expected 'drlsc 1')");
  }
  // Overrides (fleet axis values) land after the file's keys, under the same
  // flattened names the sections produce ("tenant0.rate", "churn.capacity");
  // unknown override keys fail the unknown-key check below like typos do.
  for (const auto& [key, value] : overrides) {
    cfg.set(key, value);
    cfg.set_line(key, 0);  // value came from the override, not the file line
  }

  std::set<std::string> consumed;
  const TrackedConfig c{cfg, &consumed};

  Scenario s;
  s.name = c.str("name", s.name);
  s.net.topology = c.str("topology", s.net.topology);
  if (c.has("size")) {
    s.net.width = s.net.height = c.get("size", s.net.width);
  }
  s.net.width = c.get("width", s.net.width);
  s.net.height = c.get("height", s.net.height);
  s.net.routing = c.str("routing", s.net.routing);
  s.net.max_vcs = c.get("max_vcs", s.net.max_vcs);
  s.net.max_depth = c.get("max_depth", s.net.max_depth);
  s.net.flits_per_packet = c.get("flits_per_packet", s.net.flits_per_packet);
  s.net.link_latency = static_cast<noc::Cycle>(
      c.get("link_latency", static_cast<long long>(s.net.link_latency)));
  s.net.pipeline_stages = c.get("pipeline_stages", s.net.pipeline_stages);
  s.net.seed =
      static_cast<std::uint64_t>(c.get("seed", static_cast<long long>(1)));
  s.duration = c.get("duration", s.duration);
  s.cycle_limit = static_cast<std::uint64_t>(
      c.get("cycle_limit", static_cast<long long>(s.cycle_limit)));

  const int tenants = c.get("tenants", 0);
  if (tenants <= 0) {
    throw std::invalid_argument("scenario: tenants must be >= 1");
  }
  const int num_nodes = s.net.width * s.net.height;
  for (int i = 0; i < tenants; ++i) {
    s.tenants.push_back(parse_tenant(c, i, num_nodes, base_dir));
  }
  s.controller = parse_controller(c, base_dir);
  s.faults = parse_faults(c);
  s.churn = parse_churn(c);

  for (const std::string& key : cfg.keys()) {
    if (!consumed.count(key)) {
      throw std::invalid_argument("scenario: unknown key '" + key + "'" +
                                  cfg.location_suffix(key));
    }
  }
  // Materialise churn arrivals as concrete tenants before validation, so the
  // returned scenario is fully expanded and validate() covers the instances.
  expand_churn(s);
  s.validate();
  return s;
}

Scenario ScenarioReader::read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("scenario: cannot open " + path);
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const auto slash = path.find_last_of('/');
  const std::string base_dir =
      slash == std::string::npos ? "" : path.substr(0, slash);
  try {
    return read_text(ss.str(), base_dir);
  } catch (const std::exception& e) {
    throw std::invalid_argument(path + ": " + e.what());
  }
}

void ScenarioWriter::write_text(std::ostream& os, const Scenario& s) {
  s.validate();
  os << "drlsc " << kScenarioFormatVersion << "\n";
  os << "name = " << s.name << "\n";
  os << "topology = " << s.net.topology << "\n";
  os << "width = " << s.net.width << "\n";
  os << "height = " << s.net.height << "\n";
  os << "routing = " << s.net.routing << "\n";
  os << "max_vcs = " << s.net.max_vcs << "\n";
  os << "max_depth = " << s.net.max_depth << "\n";
  os << "flits_per_packet = " << s.net.flits_per_packet << "\n";
  os << "link_latency = " << s.net.link_latency << "\n";
  os << "pipeline_stages = " << s.net.pipeline_stages << "\n";
  os << "seed = " << s.net.seed << "\n";
  const std::streamsize old_precision = os.precision(17);
  os << "duration = " << s.duration << "\n";
  os << "cycle_limit = " << s.cycle_limit << "\n";
  // Churned instances are reproduced from the [churn] block on load, so
  // only hand-declared tenants serialise — the round trip re-expands them
  // bit-identically (expansion is a pure function of the churn parameters).
  os << "tenants = " << s.num_declared_tenants() << "\n";
  std::size_t index = 0;
  for (const TenantSpec& t : s.tenants) {
    if (t.churned) continue;
    const std::string p = "tenant" + std::to_string(index++) + ".";
    os << "\n" << p << "name = " << t.name << "\n";
    os << p << "workload = " << to_string(t.kind) << "\n";
    switch (t.kind) {
      case WorkloadKind::kTrace:
        if (t.trace_file.empty()) {
          throw std::invalid_argument(
              "scenario: tenant '" + t.name +
              "' holds an in-memory trace; write it to a file and set "
              "trace_file before serialising");
        }
        os << p << "trace = " << t.trace_file << "\n";
        os << p << "rate_scale = " << t.rate_scale << "\n";
        os << p << "loop = " << (t.loop ? "true" : "false") << "\n";
        break;
      case WorkloadKind::kSteady:
        os << p << "pattern = " << t.pattern << "\n";
        os << p << "process = " << t.process << "\n";
        os << p << "rate = " << t.rate << "\n";
        break;
      case WorkloadKind::kPhased:
        if (t.phases.empty()) {
          os << p << "phase_scale = " << t.phase_scale << "\n";
        } else {
          os << p << "phases = " << t.phases.size() << "\n";
          for (std::size_t k = 0; k < t.phases.size(); ++k) {
            const noc::Phase& ph = t.phases[k];
            const std::string pp = p + "phase" + std::to_string(k) + ".";
            os << pp << "pattern = " << ph.pattern << "\n";
            os << pp << "rate = " << ph.rate << "\n";
            os << pp << "duration = " << ph.duration_core_cycles << "\n";
            os << pp << "process = " << ph.process << "\n";
            os << pp << "flits = " << ph.flits_per_packet << "\n";
          }
        }
        break;
    }
    os << p << "nodes = " << format_node_set(t.nodes) << "\n";
    os << p << "start = " << t.start << "\n";
    os << p << "stop = " << t.stop << "\n";
    // QoS lines only when the tenant departs from the default, so QoS-free
    // scenarios serialise exactly as they did before the QoS extension.
    if (t.qos != QosClass::kBestEffort) {
      os << p << "qos = " << to_string(t.qos) << "\n";
      if (t.qos == QosClass::kLatencyCritical) {
        os << p << "p95_target = " << t.p95_target << "\n";
      }
    }
  }
  if (s.controller.scheduled()) {
    os << "\n[controller]\n";
    os << "type = " << s.controller.type << "\n";
    if (s.controller.type == "drl") {
      if (s.controller.policy_file.empty()) {
        throw std::invalid_argument(
            "scenario: the drl controller schedule holds an in-memory "
            "policy; write it to a file and set policy_file before "
            "serialising");
      }
      os << "policy = " << s.controller.policy_file << "\n";
      if (!s.controller.policy_pin.empty()) {
        os << "pin = " << s.controller.policy_pin << "\n";
      }
    }
    os << "epoch_cycles = " << s.controller.epoch_cycles << "\n";
    os << "epochs = " << s.controller.epochs << "\n";
  }
  // The [churn] block only appears when churn is enabled, so churn-free
  // scenarios serialise exactly as before the churn extension.
  if (s.churn.enabled()) {
    os << "\n[churn]\n";
    os << "seed = " << s.churn.seed << "\n";
    os << "arrival_rate = " << s.churn.arrival_rate << "\n";
    if (s.churn.horizon > 0.0) os << "horizon = " << s.churn.horizon << "\n";
    if (s.churn.capacity > 0) os << "capacity = " << s.churn.capacity << "\n";
    os << "max_arrivals = " << s.churn.max_arrivals << "\n";
    os << "templates = " << s.churn.templates.size() << "\n";
    for (std::size_t k = 0; k < s.churn.templates.size(); ++k) {
      const ChurnTemplate& t = s.churn.templates[k];
      const std::string tp = "template" + std::to_string(k) + ".";
      os << tp << "tenant = " << t.tenant << "\n";
      os << tp << "weight = " << t.weight << "\n";
      os << tp << "lifetime = " << t.lifetime << "\n";
      if (t.lifetime == "uniform") {
        os << tp << "lifetime_min = " << t.lifetime_min << "\n";
        os << tp << "lifetime_max = " << t.lifetime_max << "\n";
      } else {
        os << tp << "lifetime_mean = " << t.lifetime_mean << "\n";
      }
    }
  }
  // The [faults] block only appears when faults are configured, so
  // fault-free scenarios serialise exactly as before the fault extension.
  if (s.faults.enabled()) {
    os << "\n[faults]\n";
    os << "seed = " << s.faults.seed << "\n";
    os << "link_fault_rate = " << s.faults.link_fault_rate << "\n";
    os << "retry_timeout = " << s.faults.retry_timeout << "\n";
    os << "retry_backoff = " << s.faults.retry_backoff << "\n";
    os << "retry_budget = " << s.faults.retry_budget << "\n";
    if (!s.faults.events.empty()) {
      os << "events = " << s.faults.events.size() << "\n";
      for (std::size_t k = 0; k < s.faults.events.size(); ++k) {
        const noc::FaultEvent& ev = s.faults.events[k];
        const std::string ep = "event" + std::to_string(k) + ".";
        os << ep << "at_cycle = " << ev.at_cycle << "\n";
        os << ep << "kind = " << noc::to_string(ev.kind) << "\n";
        os << ep << "node = " << ev.node << "\n";
        if (ev.kind == noc::FaultEvent::Kind::kLinkDown) {
          os << ep << "port = " << ev.port << "\n";
        } else {
          os << ep << "factor = " << ev.factor << "\n";
        }
      }
    }
  }
  os.precision(old_precision);
}

void ScenarioWriter::write_file(const std::string& path,
                                const Scenario& scenario) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("scenario: cannot write " + path);
  }
  write_text(out, scenario);
  if (!out) {
    throw std::runtime_error("scenario: write failed for " + path);
  }
}

}  // namespace drlnoc::scenario
