// Flight-recorder event tracing: a bounded ring buffer of sampled packet
// lifecycles and scenario/controller events, exported as Chrome trace-event
// JSON (loadable in Perfetto / chrome://tracing). See docs/OBSERVABILITY.md
// for the event catalogue and the sampling/determinism rules.
//
// Design constraints, in priority order:
//   * The recorder must never perturb the simulation: record() only writes
//     into a preallocated ring (overwrite-oldest), and the sampling decision
//     is a stateless hash of the packet id — no RNG stream is consumed, so
//     every golden determinism hash is unchanged with a recorder attached.
//   * Hot paths stay allocation-free: capacity is fixed at construction.
//   * This header is dependency-free (no noc/ includes) so the router and
//     NIC layers can hold recorder pointers without include cycles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

namespace drlnoc::obs {

enum class EventKind : std::uint8_t {
  // Packet lifecycle (packet_id != 0; emitted only for sampled packets).
  kPacketInject,   ///< a=src, b=dst, c=length (flits)
  kPacketVcAlloc,  ///< a=router, b=out_port, c=out_vc
  kPacketHop,      ///< a=router, b=out_port, c=hops so far
  kPacketEject,    ///< a=dst, b=hops, c=tenant
  kPacketDiscard,  ///< corrupted delivery dropped; a=src, b=dst, c=hops
  kPacketRetry,    ///< retransmission re-offered; a=src, b=dst
  kPacketLost,     ///< retry budget exhausted; a=src, b=dst
  // Scenario / controller events (packet_id == 0).
  kEpochBoundary,  ///< a=packets_received, b=packets_offered
  kConfigApply,    ///< a=active_vcs, b=active_depth, c=dvfs_level
  kTenantStart,    ///< a=tenant index
  kTenantStop,     ///< a=tenant index
  kFaultLinkDown,  ///< a=node, b=port
  kFaultSlowdown,  ///< a=node, b=factor
};

const char* to_string(EventKind kind);

/// One recorded event. POD: the ring is a flat preallocated array of these.
struct TraceEvent {
  double time = 0.0;            ///< core-clock time (router cycle for
                                ///< router-local events; see docs)
  std::uint64_t cycle = 0;      ///< router cycle of the event
  std::uint64_t packet_id = 0;  ///< 0 for non-packet events
  EventKind kind{};
  std::int32_t a = 0;  ///< kind-specific payload (see EventKind)
  std::int32_t b = 0;
  std::int32_t c = 0;
};

struct FlightRecorderParams {
  std::size_t capacity = 1u << 16;  ///< ring slots; oldest overwritten
  /// Fraction of packet ids whose lifecycle is recorded, in [0, 1].
  /// The decision is a pure function of (seed, packet_id) — deterministic,
  /// identical across runs, and free of any RNG-stream consumption.
  double sample_rate = 1.0;
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderParams params = {});

  /// Whether `packet_id`'s lifecycle is recorded. Stateless splitmix64
  /// threshold test; callers gate their record() calls on this so that an
  /// unsampled packet costs exactly one hash.
  bool sampled(std::uint64_t packet_id) const {
    if (all_) return true;
    if (threshold_ == 0) return false;
    std::uint64_t s = params_.seed ^ (packet_id * 0xbf58476d1ce4e5b9ULL);
    return hash_step(s) < threshold_;
  }

  /// Appends one event; O(1), allocation-free. When the ring is full the
  /// oldest event is overwritten and dropped() grows.
  void record(EventKind kind, double time, std::uint64_t cycle,
              std::uint64_t packet_id = 0, std::int32_t a = 0,
              std::int32_t b = 0, std::int32_t c = 0);

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return ring_.size(); }
  std::uint64_t recorded() const { return recorded_; }  ///< total, incl. dropped
  std::uint64_t dropped() const { return dropped_; }    ///< overwritten events
  const FlightRecorderParams& params() const { return params_; }

  /// Ring contents, oldest first.
  std::vector<TraceEvent> events() const;
  void clear();

  /// Chrome trace-event JSON: packet lifecycles as async ("b"/"n"/"e")
  /// events keyed by packet id, scenario events as instants, config as
  /// counter tracks. Timestamps are router cycles. Loadable in Perfetto.
  void write_chrome_trace(std::ostream& os) const;

 private:
  static std::uint64_t hash_step(std::uint64_t& state);

  FlightRecorderParams params_;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  ///< next write slot
  std::size_t size_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t threshold_ = 0;  ///< sample_rate mapped onto u64 space
  bool all_ = false;             ///< sample_rate >= 1: skip the hash
};

}  // namespace drlnoc::obs
