#include "obs/flight_recorder.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "util/rng.h"

namespace drlnoc::obs {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kPacketInject: return "packet_inject";
    case EventKind::kPacketVcAlloc: return "packet_vc_alloc";
    case EventKind::kPacketHop: return "packet_hop";
    case EventKind::kPacketEject: return "packet_eject";
    case EventKind::kPacketDiscard: return "packet_discard";
    case EventKind::kPacketRetry: return "packet_retry";
    case EventKind::kPacketLost: return "packet_lost";
    case EventKind::kEpochBoundary: return "epoch_boundary";
    case EventKind::kConfigApply: return "config_apply";
    case EventKind::kTenantStart: return "tenant_start";
    case EventKind::kTenantStop: return "tenant_stop";
    case EventKind::kFaultLinkDown: return "fault_link_down";
    case EventKind::kFaultSlowdown: return "fault_slowdown";
  }
  return "?";
}

std::uint64_t FlightRecorder::hash_step(std::uint64_t& state) {
  return util::splitmix64(state);
}

FlightRecorder::FlightRecorder(FlightRecorderParams params)
    : params_(params), ring_(std::max<std::size_t>(1, params.capacity)) {
  const double rate = std::clamp(params_.sample_rate, 0.0, 1.0);
  all_ = rate >= 1.0;
  // Map the rate onto the full u64 space; 2^64 as a double is exact.
  threshold_ = all_ ? ~0ULL
                    : static_cast<std::uint64_t>(
                          rate * 18446744073709551616.0);
}

void FlightRecorder::record(EventKind kind, double time, std::uint64_t cycle,
                            std::uint64_t packet_id, std::int32_t a,
                            std::int32_t b, std::int32_t c) {
  TraceEvent& e = ring_[head_];
  e.time = time;
  e.cycle = cycle;
  e.packet_id = packet_id;
  e.kind = kind;
  e.a = a;
  e.b = b;
  e.c = c;
  head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
  ++recorded_;
  if (size_ < ring_.size()) {
    ++size_;
  } else {
    ++dropped_;
  }
}

std::vector<TraceEvent> FlightRecorder::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  // Oldest event: head_ when the ring has wrapped, slot 0 otherwise.
  const std::size_t start = size_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void FlightRecorder::clear() {
  head_ = 0;
  size_ = 0;
  recorded_ = 0;
  dropped_ = 0;
}

namespace {

/// Chrome trace-event phase for one event kind. Packet lifecycles map to
/// async events ("b" begin / "n" instant / "e" end) keyed by the packet id;
/// everything else is a thread-scoped instant. Config changes additionally
/// emit counter samples ("C") so Perfetto draws the knobs as tracks.
char phase_of(EventKind kind) {
  switch (kind) {
    case EventKind::kPacketInject: return 'b';
    case EventKind::kPacketVcAlloc:
    case EventKind::kPacketHop:
    case EventKind::kPacketRetry: return 'n';
    case EventKind::kPacketEject:
    case EventKind::kPacketDiscard:
    case EventKind::kPacketLost: return 'e';
    default: return 'i';
  }
}

}  // namespace

void FlightRecorder::write_chrome_trace(std::ostream& os) const {
  os << "{\n\"schema\": 1,\n\"metadata\": {"
     << "\"kind\": \"drlnoc-trace\", \"sample_rate\": " << params_.sample_rate
     << ", \"capacity\": " << ring_.size() << ", \"recorded\": " << recorded_
     << ", \"dropped\": " << dropped_ << "},\n\"traceEvents\": [\n";
  const std::vector<TraceEvent> evs = events();
  bool first = true;
  for (const TraceEvent& e : evs) {
    const char ph = phase_of(e.kind);
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\": \"" << to_string(e.kind) << "\", \"cat\": \""
       << (e.packet_id != 0 ? "packet" : "scenario") << "\", \"ph\": \"" << ph
       << "\", \"ts\": " << e.cycle << ", \"pid\": 0, \"tid\": 0";
    if (e.packet_id != 0) os << ", \"id\": " << e.packet_id;
    os << ", \"args\": {\"a\": " << e.a << ", \"b\": " << e.b
       << ", \"c\": " << e.c << ", \"time\": " << e.time << "}}";
    if (e.kind == EventKind::kConfigApply) {
      // Counter samples let Perfetto plot the configuration trajectory.
      os << ",\n{\"name\": \"noc_config\", \"ph\": \"C\", \"ts\": " << e.cycle
         << ", \"pid\": 0, \"args\": {\"active_vcs\": " << e.a
         << ", \"active_depth\": " << e.b << ", \"dvfs_level\": " << e.c
         << "}}";
    }
  }
  os << "\n]\n}\n";
}

}  // namespace drlnoc::obs
