// Profiling hooks: fixed-slot scoped phase timers aggregated per run.
// A process-global singleton holds one (total_ns, count) pair per phase;
// ScopedPhase reads the steady clock only while profiling is enabled, so a
// disabled build pays exactly one relaxed atomic load per scope — the
// "provably inert when disabled" contract perf_smoke pins at <= 2%.
//
// Counters are relaxed atomics: parallel experiment workers may time the
// same phase concurrently; totals are exact, ordering is irrelevant.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>

namespace drlnoc::obs {

enum class Phase : int {
  kNetStep = 0,    ///< Network::step (fabric simulation)
  kRollout,        ///< trainer: agent action selection
  kEnvStep,        ///< trainer: environment step (epoch simulation)
  kLearn,          ///< trainer: gradient step (agent.observe/learn)
  kReplaySample,   ///< DQN: replay-buffer batch sampling
  kEvaluate,       ///< full policy evaluation episodes
  kCount,
};

const char* to_string(Phase phase);

class Profiler {
 public:
  static Profiler& instance();

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void add(Phase phase, std::uint64_t ns) {
    const auto i = static_cast<std::size_t>(phase);
    ns_[i].fetch_add(ns, std::memory_order_relaxed);
    count_[i].fetch_add(1, std::memory_order_relaxed);
  }

  struct PhaseTotals {
    std::uint64_t ns = 0;
    std::uint64_t count = 0;
  };
  PhaseTotals totals(Phase phase) const;

  void reset();

  /// {"phases": [{"name", "ns", "count", "mean_ns"}...]} — only phases that
  /// fired are listed.
  void write_json(std::ostream& os) const;

 private:
  Profiler() = default;
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> ns_[static_cast<std::size_t>(Phase::kCount)]{};
  std::atomic<std::uint64_t> count_[static_cast<std::size_t>(Phase::kCount)]{};
};

/// RAII phase timer. Construction samples enabled() once; a disabled
/// profiler costs one relaxed load and no clock reads.
class ScopedPhase {
 public:
  explicit ScopedPhase(Phase phase)
      : phase_(phase), active_(Profiler::instance().enabled()) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedPhase() {
    if (!active_) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    Profiler::instance().add(phase_, static_cast<std::uint64_t>(ns));
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Phase phase_;
  bool active_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace drlnoc::obs
