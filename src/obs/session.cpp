#include "obs/session.h"

#include <cmath>
#include <fstream>

#include "noc/network.h"
#include "obs/profiler.h"
#include "scenario/scenario.h"
#include "util/config.h"
#include "util/log.h"

namespace drlnoc::obs {

ObsOptions ObsOptions::from_config(const util::Config& cfg) {
  ObsOptions opts;
  opts.trace_out = cfg.get("trace-out", std::string());
  opts.metrics_out = cfg.get("metrics-out", std::string());
  opts.sample_rate = cfg.get("trace-sample", opts.sample_rate);
  const long long cap =
      cfg.get("trace-capacity", static_cast<long long>(opts.capacity));
  if (cap > 0) opts.capacity = static_cast<std::size_t>(cap);
  return opts;
}

std::string heatmap_path_for(const std::string& metrics_path) {
  std::string base = metrics_path;
  const std::string ext = ".json";
  if (base.size() > ext.size() &&
      base.compare(base.size() - ext.size(), ext.size(), ext) == 0) {
    base.resize(base.size() - ext.size());
  }
  return base + "_heatmap.csv";
}

ObsSession::ObsSession(ObsOptions opts) : options_(std::move(opts)) {
  if (!options_.enabled()) return;
  if (!options_.trace_out.empty()) {
    FlightRecorderParams rp;
    rp.capacity = options_.capacity;
    rp.sample_rate = options_.sample_rate;
    recorder_ = std::make_unique<FlightRecorder>(rp);
  }
  Profiler::instance().reset();
  Profiler::instance().set_enabled(true);
}

ObsSession::~ObsSession() {
  if (enabled() && !finished_) Profiler::instance().set_enabled(false);
}

NetworkMetrics* ObsSession::metrics(int num_nodes) {
  if (options_.metrics_out.empty()) return nullptr;
  if (metrics_ == nullptr || metrics_->num_nodes() != num_nodes) {
    metrics_ = std::make_unique<NetworkMetrics>(num_nodes);
  }
  return metrics_.get();
}

void ObsSession::attach(noc::Network& net) {
  if (!enabled()) return;
  net.set_flight_recorder(recorder_.get());
  net.set_metrics(metrics(net.num_nodes()));
}

void ObsSession::annotate_scenario(const scenario::Scenario& scenario) {
  if (recorder_ == nullptr) return;
  for (std::size_t i = 0; i < scenario.tenants.size(); ++i) {
    const scenario::TenantSpec& t = scenario.tenants[i];
    recorder_->record(EventKind::kTenantStart, t.start,
                      static_cast<std::uint64_t>(t.start), /*packet_id=*/0,
                      static_cast<std::int32_t>(i));
    if (std::isfinite(t.stop)) {
      recorder_->record(EventKind::kTenantStop, t.stop,
                        static_cast<std::uint64_t>(t.stop), /*packet_id=*/0,
                        static_cast<std::int32_t>(i));
    }
  }
}

bool ObsSession::finish() {
  if (!enabled() || finished_) return true;
  finished_ = true;
  Profiler::instance().set_enabled(false);
  bool ok = true;
  if (recorder_ != nullptr) {
    std::ofstream os(options_.trace_out);
    if (os) {
      recorder_->write_chrome_trace(os);
    }
    if (!os) {
      LOG_ERROR << "obs: cannot write trace to " << options_.trace_out;
      ok = false;
    }
  }
  if (!options_.metrics_out.empty()) {
    std::ofstream os(options_.metrics_out);
    if (os) {
      os << "{\n\"schema\": 1,\n\"kind\": \"drlnoc-obs\",\n\"profile\": ";
      Profiler::instance().write_json(os);
      os << ",\n\"metrics\": ";
      if (metrics_ != nullptr) {
        metrics_->write_json(os);
      } else {
        os << "null\n";
      }
      os << "}\n";
    }
    if (!os) {
      LOG_ERROR << "obs: cannot write metrics to " << options_.metrics_out;
      ok = false;
    }
    if (metrics_ != nullptr) {
      const std::string heatmap = heatmap_path_for(options_.metrics_out);
      std::ofstream hs(heatmap);
      if (hs) metrics_->write_heatmap_csv(hs);
      if (!hs) {
        LOG_ERROR << "obs: cannot write heatmap to " << heatmap;
        ok = false;
      }
    }
  }
  return ok;
}

}  // namespace drlnoc::obs
