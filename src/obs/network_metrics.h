// NetworkMetrics: the fabric's view onto a MetricsRegistry. Registers the
// standard per-router / per-NIC / per-epoch metric families once at
// construction and gives Network two allocation-free entry points:
// sample_node() per router per epoch (before activity reset) and
// commit_epoch() at the drain boundary. The registry it wraps exports to
// JSON and a per-router heatmap CSV; see docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "obs/metrics.h"

namespace drlnoc::noc {
struct EpochStats;
}  // namespace drlnoc::noc

namespace drlnoc::obs {

class NetworkMetrics {
 public:
  explicit NetworkMetrics(int num_nodes);

  int num_nodes() const { return num_nodes_; }
  MetricsRegistry& registry() { return reg_; }
  const MetricsRegistry& registry() const { return reg_; }

  /// Per-router sample for the closing epoch; called from
  /// Network::drain_epoch_stats before the router's activity counters reset.
  void sample_node(int node, std::uint64_t link_flits, int buffered_flits,
                   int max_vc_occupancy, std::uint64_t nic_queue_depth);

  /// Closes the epoch: folds the aggregate window into the global series
  /// and commits one time-series row stamped with the epoch's end time.
  void commit_epoch(double time, const noc::EpochStats& stats);

  /// Registry JSON wrapped with a schema header.
  void write_json(std::ostream& os) const;
  /// Per-router link-utilization heatmap (rows = epochs, cols = routers).
  void write_heatmap_csv(std::ostream& os) const;

 private:
  int num_nodes_;
  MetricsRegistry reg_;
  // Per-node families (instances = num_nodes).
  MetricsRegistry::Id link_flits_;
  MetricsRegistry::Id buffered_;
  MetricsRegistry::Id max_vc_occ_;
  MetricsRegistry::Id nic_queue_;
  // Aggregate per-epoch gauges.
  MetricsRegistry::Id latency_avg_;
  MetricsRegistry::Id latency_p95_;
  MetricsRegistry::Id offered_rate_;
  MetricsRegistry::Id accepted_rate_;
  MetricsRegistry::Id occupancy_;
  MetricsRegistry::Id active_fraction_;
  MetricsRegistry::Id energy_pj_;
  // Per-epoch counters (reset on commit).
  MetricsRegistry::Id packets_offered_;
  MetricsRegistry::Id packets_received_;
  MetricsRegistry::Id retries_;
  MetricsRegistry::Id packets_lost_;
  MetricsRegistry::Id rerouted_hops_;
  MetricsRegistry::Id flits_dropped_;
  // Run-cumulative histogram of per-epoch average latency.
  MetricsRegistry::Id latency_hist_;
};

}  // namespace drlnoc::obs
