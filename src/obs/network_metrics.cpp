#include "obs/network_metrics.h"

#include <ostream>

#include "noc/network.h"

namespace drlnoc::obs {

NetworkMetrics::NetworkMetrics(int num_nodes) : num_nodes_(num_nodes) {
  link_flits_ = reg_.add_gauge("router.link_flits", num_nodes);
  buffered_ = reg_.add_gauge("router.buffered_flits", num_nodes);
  max_vc_occ_ = reg_.add_gauge("router.max_vc_occupancy", num_nodes);
  nic_queue_ = reg_.add_gauge("nic.queue_depth", num_nodes);
  latency_avg_ = reg_.add_gauge("net.latency_avg");
  latency_p95_ = reg_.add_gauge("net.latency_p95");
  offered_rate_ = reg_.add_gauge("net.offered_rate");
  accepted_rate_ = reg_.add_gauge("net.accepted_rate");
  occupancy_ = reg_.add_gauge("net.avg_buffer_occupancy");
  active_fraction_ = reg_.add_gauge("net.avg_active_fraction");
  energy_pj_ = reg_.add_gauge("net.energy_pj");
  packets_offered_ = reg_.add_counter("net.packets_offered");
  packets_received_ = reg_.add_counter("net.packets_received");
  retries_ = reg_.add_counter("fault.retries");
  packets_lost_ = reg_.add_counter("fault.packets_lost");
  rerouted_hops_ = reg_.add_counter("fault.rerouted_hops");
  flits_dropped_ = reg_.add_counter("fault.flits_dropped");
  latency_hist_ = reg_.add_histogram("net.epoch_latency_avg",
                                     /*limit=*/4096.0, /*buckets=*/512);
}

void NetworkMetrics::sample_node(int node, std::uint64_t link_flits,
                                 int buffered_flits, int max_vc_occupancy,
                                 std::uint64_t nic_queue_depth) {
  reg_.set_gauge(link_flits_, node, static_cast<double>(link_flits));
  reg_.set_gauge(buffered_, node, static_cast<double>(buffered_flits));
  reg_.set_gauge(max_vc_occ_, node, static_cast<double>(max_vc_occupancy));
  reg_.set_gauge(nic_queue_, node, static_cast<double>(nic_queue_depth));
}

void NetworkMetrics::commit_epoch(double time, const noc::EpochStats& stats) {
  reg_.set_gauge(latency_avg_, 0, stats.avg_latency);
  reg_.set_gauge(latency_p95_, 0, stats.p95_latency);
  reg_.set_gauge(offered_rate_, 0, stats.offered_rate);
  reg_.set_gauge(accepted_rate_, 0, stats.accepted_rate);
  reg_.set_gauge(occupancy_, 0, stats.avg_buffer_occupancy);
  reg_.set_gauge(active_fraction_, 0, stats.avg_active_fraction);
  reg_.set_gauge(energy_pj_, 0, stats.total_energy_pj());
  reg_.add_to_counter(packets_offered_, 0,
                      static_cast<double>(stats.packets_offered));
  reg_.add_to_counter(packets_received_, 0,
                      static_cast<double>(stats.packets_received));
  reg_.add_to_counter(retries_, 0, static_cast<double>(stats.retries));
  reg_.add_to_counter(packets_lost_, 0,
                      static_cast<double>(stats.packets_lost));
  reg_.add_to_counter(rerouted_hops_, 0,
                      static_cast<double>(stats.rerouted_hops));
  reg_.add_to_counter(flits_dropped_, 0,
                      static_cast<double>(stats.flits_dropped));
  if (stats.packets_received > 0) reg_.observe(latency_hist_, stats.avg_latency);
  reg_.commit_sample(time);
}

void NetworkMetrics::write_json(std::ostream& os) const {
  os << "{\n\"schema\": 1,\n\"kind\": \"drlnoc-metrics\",\n\"num_nodes\": "
     << num_nodes_ << ",\n\"registry\": ";
  reg_.write_json(os);
  os << "}\n";
}

void NetworkMetrics::write_heatmap_csv(std::ostream& os) const {
  reg_.write_heatmap_csv(os, "router.link_flits");
}

}  // namespace drlnoc::obs
