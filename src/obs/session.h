// ObsSession: the one-stop wiring layer the CLI tools and benches share.
// Parses `--trace-out=` / `--metrics-out=` / `--trace-sample=` /
// `--trace-capacity=` into ObsOptions, owns the FlightRecorder and
// NetworkMetrics for one run, attaches them to a Network, annotates
// scenario-level events (tenant windows), and writes every artifact on
// finish(). A default-constructed / disabled session is inert: no recorder,
// no metrics, profiler untouched, attach() a no-op — so the observer-free
// hot path stays bit-identical and branch-predictable.
#pragma once

#include <memory>
#include <string>

#include "obs/flight_recorder.h"
#include "obs/network_metrics.h"

namespace drlnoc::util {
class Config;
}  // namespace drlnoc::util

namespace drlnoc::noc {
class Network;
}  // namespace drlnoc::noc

namespace drlnoc::scenario {
struct Scenario;
}  // namespace drlnoc::scenario

namespace drlnoc::obs {

struct ObsOptions {
  std::string trace_out;    ///< Chrome trace-event JSON path; "" = no trace
  std::string metrics_out;  ///< metrics JSON path; "" = no metrics
  double sample_rate = 1.0; ///< packet-lifecycle sampling fraction [0,1]
  std::size_t capacity = FlightRecorderParams{}.capacity;

  /// Reads the normalized config keys "trace-out", "metrics-out",
  /// "trace-sample", "trace-capacity" (util::Config strips the leading
  /// "--" of flag-style tokens).
  static ObsOptions from_config(const util::Config& cfg);

  bool enabled() const { return !trace_out.empty() || !metrics_out.empty(); }
};

class ObsSession {
 public:
  ObsSession() = default;
  /// Arms the session when `opts.enabled()`: builds the recorder (when a
  /// trace is requested), resets and enables the profiler.
  explicit ObsSession(ObsOptions opts);
  ~ObsSession();

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  bool enabled() const { return options_.enabled(); }
  const ObsOptions& options() const { return options_; }

  FlightRecorder* recorder() { return recorder_.get(); }
  /// Lazily builds the metrics sink for a `num_nodes`-node fabric; returns
  /// nullptr when no metrics output was requested.
  NetworkMetrics* metrics(int num_nodes);

  /// Attaches recorder + metrics to `net` (no-op when disabled). Safe to
  /// call again for a rebuilt fabric of the same size (RL episode resets).
  void attach(noc::Network& net);

  /// Records scenario-level instants: one kTenantStart per tenant window
  /// open and one kTenantStop per finite window close.
  void annotate_scenario(const scenario::Scenario& scenario);

  /// Writes the trace JSON, metrics JSON (+ profiler section), and the
  /// per-router heatmap CSV next to the metrics path. Disables the
  /// profiler. Returns false when any output file could not be written
  /// (after logging the path).
  bool finish();

 private:
  ObsOptions options_{};
  std::unique_ptr<FlightRecorder> recorder_;
  std::unique_ptr<NetworkMetrics> metrics_;
  bool finished_ = false;
};

/// "foo.json" -> "foo_heatmap.csv"; "foo" -> "foo_heatmap.csv".
std::string heatmap_path_for(const std::string& metrics_path);

}  // namespace drlnoc::obs
