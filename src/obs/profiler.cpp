#include "obs/profiler.h"

#include <ostream>

namespace drlnoc::obs {

const char* to_string(Phase phase) {
  switch (phase) {
    case Phase::kNetStep: return "net_step";
    case Phase::kRollout: return "rollout";
    case Phase::kEnvStep: return "env_step";
    case Phase::kLearn: return "learn";
    case Phase::kReplaySample: return "replay_sample";
    case Phase::kEvaluate: return "evaluate";
    case Phase::kCount: break;
  }
  return "?";
}

Profiler& Profiler::instance() {
  static Profiler p;
  return p;
}

Profiler::PhaseTotals Profiler::totals(Phase phase) const {
  const auto i = static_cast<std::size_t>(phase);
  return {ns_[i].load(std::memory_order_relaxed),
          count_[i].load(std::memory_order_relaxed)};
}

void Profiler::reset() {
  for (std::size_t i = 0; i < static_cast<std::size_t>(Phase::kCount); ++i) {
    ns_[i].store(0, std::memory_order_relaxed);
    count_[i].store(0, std::memory_order_relaxed);
  }
}

void Profiler::write_json(std::ostream& os) const {
  os << "{\"enabled\": " << (enabled() ? "true" : "false")
     << ", \"phases\": [";
  bool first = true;
  for (int i = 0; i < static_cast<int>(Phase::kCount); ++i) {
    const PhaseTotals t = totals(static_cast<Phase>(i));
    if (t.count == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << "{\"name\": \"" << to_string(static_cast<Phase>(i))
       << "\", \"ns\": " << t.ns << ", \"count\": " << t.count
       << ", \"mean_ns\": "
       << static_cast<double>(t.ns) / static_cast<double>(t.count) << "}";
  }
  os << "]}";
}

}  // namespace drlnoc::obs
