#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace drlnoc::obs {

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

MetricsRegistry::Id MetricsRegistry::add_scalar(std::string name,
                                                MetricKind kind,
                                                int instances) {
  if (instances < 1) {
    throw std::invalid_argument("MetricsRegistry: instances must be >= 1");
  }
  Metric m;
  m.name = std::move(name);
  m.kind = kind;
  m.instances = instances;
  m.offset = values_.size();
  values_.resize(values_.size() + static_cast<std::size_t>(instances), 0.0);
  metrics_.push_back(std::move(m));
  return static_cast<Id>(metrics_.size() - 1);
}

MetricsRegistry::Id MetricsRegistry::add_counter(std::string name,
                                                 int instances) {
  return add_scalar(std::move(name), MetricKind::kCounter, instances);
}

MetricsRegistry::Id MetricsRegistry::add_gauge(std::string name,
                                               int instances) {
  return add_scalar(std::move(name), MetricKind::kGauge, instances);
}

MetricsRegistry::Id MetricsRegistry::add_histogram(std::string name,
                                                   double limit,
                                                   std::size_t buckets) {
  Metric m;
  m.name = std::move(name);
  m.kind = MetricKind::kHistogram;
  m.instances = 1;
  m.hist = histograms_.size();
  histograms_.emplace_back(limit, buckets);
  metrics_.push_back(std::move(m));
  return static_cast<Id>(metrics_.size() - 1);
}

void MetricsRegistry::add_to_counter(Id id, int instance, double delta) {
  const Metric& m = metrics_[static_cast<std::size_t>(id)];
  assert(m.kind == MetricKind::kCounter && instance >= 0 &&
         instance < m.instances);
  values_[m.offset + static_cast<std::size_t>(instance)] += delta;
}

void MetricsRegistry::set_gauge(Id id, int instance, double value) {
  const Metric& m = metrics_[static_cast<std::size_t>(id)];
  assert(m.kind == MetricKind::kGauge && instance >= 0 &&
         instance < m.instances);
  values_[m.offset + static_cast<std::size_t>(instance)] = value;
}

void MetricsRegistry::observe(Id id, double value) {
  const Metric& m = metrics_[static_cast<std::size_t>(id)];
  assert(m.kind == MetricKind::kHistogram);
  histograms_[m.hist].add(value);
}

void MetricsRegistry::commit_sample(double time) {
  times_.push_back(time);
  rows_.push_back(values_);
  for (const Metric& m : metrics_) {
    if (m.kind != MetricKind::kCounter) continue;
    std::fill_n(values_.begin() + static_cast<std::ptrdiff_t>(m.offset),
                m.instances, 0.0);
  }
}

int MetricsRegistry::instances(Id id) const {
  return metrics_[static_cast<std::size_t>(id)].instances;
}

const std::string& MetricsRegistry::name(Id id) const {
  return metrics_[static_cast<std::size_t>(id)].name;
}

double MetricsRegistry::value(Id id, int instance) const {
  const Metric& m = metrics_[static_cast<std::size_t>(id)];
  return values_[m.offset + static_cast<std::size_t>(instance)];
}

double MetricsRegistry::sample_value(std::size_t row, Id id,
                                     int instance) const {
  const Metric& m = metrics_[static_cast<std::size_t>(id)];
  return rows_.at(row)[m.offset + static_cast<std::size_t>(instance)];
}

const util::Histogram& MetricsRegistry::histogram(Id id) const {
  return histograms_[metrics_[static_cast<std::size_t>(id)].hist];
}

void MetricsRegistry::write_json(std::ostream& os) const {
  os.precision(10);
  os << "{\n\"samples\": " << times_.size() << ",\n\"times\": [";
  for (std::size_t i = 0; i < times_.size(); ++i) {
    os << (i ? ", " : "") << times_[i];
  }
  os << "],\n\"series\": [\n";
  bool first = true;
  for (const Metric& m : metrics_) {
    if (m.kind == MetricKind::kHistogram) continue;
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\": \"" << m.name << "\", \"kind\": \"" << to_string(m.kind)
       << "\", \"instances\": " << m.instances << ", \"values\": [";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      os << (r ? ", " : "");
      if (m.instances == 1) {
        os << rows_[r][m.offset];
      } else {
        os << "[";
        for (int k = 0; k < m.instances; ++k) {
          os << (k ? ", " : "")
             << rows_[r][m.offset + static_cast<std::size_t>(k)];
        }
        os << "]";
      }
    }
    os << "]}";
  }
  os << "\n],\n\"histograms\": [\n";
  first = true;
  for (const Metric& m : metrics_) {
    if (m.kind != MetricKind::kHistogram) continue;
    if (!first) os << ",\n";
    first = false;
    const util::Histogram& h = histograms_[m.hist];
    os << "{\"name\": \"" << m.name << "\", \"count\": " << h.count()
       << ", \"mean\": " << h.mean() << ", \"p50\": " << h.percentile(0.5)
       << ", \"p95\": " << h.percentile(0.95)
       << ", \"p99\": " << h.percentile(0.99)
       << ", \"overflow\": " << h.overflow() << ", \"buckets\": [";
    for (std::size_t i = 0; i < h.buckets().size(); ++i) {
      os << (i ? ", " : "") << h.buckets()[i];
    }
    os << "]}";
  }
  os << "\n]\n}\n";
}

void MetricsRegistry::write_heatmap_csv(std::ostream& os,
                                        const std::string& metric) const {
  const Metric* found = nullptr;
  for (const Metric& m : metrics_) {
    if (m.name == metric) {
      found = &m;
      break;
    }
  }
  if (found == nullptr || found->kind == MetricKind::kHistogram) {
    throw std::invalid_argument(
        "MetricsRegistry: no counter/gauge metric named '" + metric + "'");
  }
  os.precision(10);
  os << "time";
  for (int k = 0; k < found->instances; ++k) os << ",i" << k;
  os << "\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << times_[r];
    for (int k = 0; k < found->instances; ++k) {
      os << "," << rows_[r][found->offset + static_cast<std::size_t>(k)];
    }
    os << "\n";
  }
}

}  // namespace drlnoc::obs
