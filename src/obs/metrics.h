// Fixed-slot metrics registry: counters, gauges, and histograms registered
// once up front, updated allocation-free on hot paths, and sampled into a
// time series by commit_sample(). The time series exports to JSON and — for
// multi-instance (per-router) metrics — a heatmap CSV with one row per
// sample and one column per instance. See docs/OBSERVABILITY.md for the
// metric catalogue.
//
// Semantics per kind:
//   * counter   — accumulates between samples; commit_sample() snapshots the
//                 window's total and resets it to zero (per-epoch deltas).
//   * gauge     — last-written value; persists across samples.
//   * histogram — cumulative over the whole run (bucket counts exported once
//                 with percentile summaries, not per sample).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/stats.h"

namespace drlnoc::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

const char* to_string(MetricKind kind);

class MetricsRegistry {
 public:
  using Id = int;

  /// Registration (startup only — allocates). `instances` > 1 makes an
  /// indexed family, e.g. one slot per router.
  Id add_counter(std::string name, int instances = 1);
  Id add_gauge(std::string name, int instances = 1);
  Id add_histogram(std::string name, double limit, std::size_t buckets);

  /// Hot-path updates: O(1), no allocation, no bounds surprises (instance
  /// indices are asserted in debug builds only — callers own the contract).
  void add_to_counter(Id id, int instance, double delta);
  void set_gauge(Id id, int instance, double value);
  void observe(Id id, double value);  ///< histogram sample

  /// Snapshots every counter/gauge into a new time-series row stamped with
  /// `time`, then resets the counters. Allocates (epoch boundary, not hot
  /// path).
  void commit_sample(double time);

  std::size_t samples() const { return times_.size(); }
  std::size_t num_metrics() const { return metrics_.size(); }
  int instances(Id id) const;
  const std::string& name(Id id) const;
  /// Current (uncommitted) value of one counter/gauge instance.
  double value(Id id, int instance = 0) const;
  /// Committed value of one instance at one sample row.
  double sample_value(std::size_t row, Id id, int instance = 0) const;
  const util::Histogram& histogram(Id id) const;

  /// Full registry as JSON: {"samples", "times", "series": [...],
  /// "histograms": [...]}.
  void write_json(std::ostream& os) const;
  /// Heatmap CSV for one multi-instance metric: header `time,i0,i1,...`,
  /// one row per committed sample. Throws std::invalid_argument on an
  /// unknown metric name or a histogram.
  void write_heatmap_csv(std::ostream& os, const std::string& metric) const;

 private:
  struct Metric {
    std::string name;
    MetricKind kind{};
    int instances = 1;
    std::size_t offset = 0;  ///< into values_ (counter/gauge)
    std::size_t hist = 0;    ///< into histograms_ (histogram)
  };

  Id add_scalar(std::string name, MetricKind kind, int instances);

  std::vector<Metric> metrics_;
  std::vector<double> values_;  ///< flat current counter/gauge storage
  std::vector<util::Histogram> histograms_;
  std::vector<double> times_;           ///< one stamp per committed sample
  std::vector<std::vector<double>> rows_;  ///< one values_ copy per sample
};

}  // namespace drlnoc::obs
