// Example: plugging a user-defined controller into the evaluation harness.
// Implements a simple "clairvoyant schedule" controller (switches on a fixed
// timetable) and compares it with the built-in heuristic and statics —
// demonstrating the Controller extension point of the public API.
#include <iostream>

#include "core/controller.h"
#include "core/env_noc.h"
#include "core/trainer.h"
#include "util/config.h"
#include "util/table.h"

using namespace drlnoc;

namespace {

// A controller that escalates when the epoch's p95 latency exceeds a budget
// and de-escalates when it is far below — a latency-SLO controller, a shape
// the Controller interface supports but the library does not ship.
class SloController : public core::Controller {
 public:
  SloController(const core::ActionSpace& space, double p95_budget)
      : space_(space), budget_(p95_budget) {}

  std::string name() const override { return "slo-p95"; }

  void begin_episode() override { action_ = space_.max_action(); }

  int decide(const noc::EpochStats& stats, const rl::State&) override {
    const noc::NocConfig cur = space_.decode(action_);
    noc::NocConfig next = cur;
    if (stats.p95_latency > budget_ || stats.source_queue_total > 32) {
      next.dvfs_level = std::min(next.dvfs_level + 1, 3);
      next.active_vcs = 4;
      next.active_depth = 8;
    } else if (stats.p95_latency < 0.3 * budget_) {
      // Cheap knobs first, then the clock.
      if (next.active_depth > 2) next.active_depth /= 2;
      else if (next.active_vcs > 1) next.active_vcs /= 2;
      else if (next.dvfs_level > 0) --next.dvfs_level;
    }
    action_ = space_.index_of(next);
    return action_;
  }

 private:
  const core::ActionSpace& space_;
  double budget_;
  int action_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const util::Config cfg = util::Config::from_args(argc, argv);

  core::NocEnvParams ep;
  ep.net.width = ep.net.height = cfg.get("size", 4);
  ep.net.seed = 11;
  ep.epoch_cycles = 512;
  ep.epochs_per_episode = 48;
  core::NocConfigEnv env(ep);

  SloController slo(env.actions(), cfg.get("p95_budget", 120.0));
  core::HeuristicParams hp;
  hp.num_nodes = env.params().net.width * env.params().net.height;
  core::HeuristicController heuristic(env.actions(), hp);
  auto smax = core::StaticController::maximal(env.actions());
  auto smin = core::StaticController::minimal(env.actions());

  util::Table t({"controller", "reward", "latency", "p95", "power_mW",
                 "backlog"});
  for (core::Controller* c :
       std::initializer_list<core::Controller*>{&slo, &heuristic, smax.get(),
                                                smin.get()}) {
    const auto r = core::evaluate(env, *c);
    t.row()
        .cell(r.controller)
        .cell(r.total_reward, 2)
        .cell(r.mean_latency, 1)
        .cell(r.p95_latency, 1)
        .cell(r.mean_power_mw, 1)
        .cell(static_cast<long long>(r.backlog_end));
  }
  t.print(std::cout);
  std::cout << "\nWriting a controller = subclass core::Controller and "
               "override decide(); evaluate() handles the rest.\n";
  return 0;
}
