// Quickstart: build an 8x8 mesh NoC, run uniform traffic, print the basic
// statistics — then let a tiny DQN agent self-configure it on a phased
// workload and compare against the static worst-case configuration.
//
//   ./build/examples/quickstart            # defaults
//   ./build/examples/quickstart episodes=8 # trains a little longer
#include <iostream>

#include "core/env_noc.h"
#include "core/trainer.h"
#include "noc/simulator.h"
#include "util/config.h"

using namespace drlnoc;

int main(int argc, char** argv) {
  const util::Config cfg = util::Config::from_args(argc, argv);

  // --- 1. plain simulation -------------------------------------------------
  noc::NetworkParams np;
  np.topology = "mesh";
  np.width = np.height = 8;
  np.seed = 42;

  std::cout << "== steady-state simulation: 8x8 mesh, uniform 0.10 ==\n";
  const auto point = noc::measure_point(np, "uniform", 0.10);
  std::cout << "avg latency  : " << point.stats.avg_latency
            << " core cycles\np95 latency  : " << point.stats.p95_latency
            << "\naccepted rate: " << point.stats.accepted_rate
            << " pkt/node/cycle\navg power    : "
            << point.stats.avg_power_mw(2.0) << " mW\n\n";

  // --- 2. DRL self-configuration ------------------------------------------
  core::NocEnvParams ep;
  ep.net = np;
  ep.net.width = ep.net.height = cfg.get("size", 4);  // small & quick
  ep.epoch_cycles = 512;
  ep.epochs_per_episode = 24;
  ep.seed = 1;

  core::NocConfigEnv env(ep);
  const int episodes = cfg.get("episodes", 40);
  rl::DqnParams dp;
  dp.hidden = {32, 32};
  dp.min_replay = 128;
  dp.epsilon_decay_steps =
      static_cast<std::uint64_t>(episodes) * 24 * 3 / 4;
  rl::DqnAgent agent(env.state_size(), env.num_actions(), dp);

  std::cout << "== training DQN self-configuration (" << episodes
            << " episodes) ==\n";
  core::TrainParams tp;
  tp.episodes = episodes;
  tp.eval_every = 0;
  const auto train = core::train_dqn(env, agent, tp);
  std::cout << "first episode return: " << train.episode_returns.front()
            << "\nlast episode return : " << train.episode_returns.back()
            << "\n\n";

  // --- 3. compare against static-max ---------------------------------------
  core::DrlController drl(env.actions(), agent);
  auto stat = core::StaticController::maximal(env.actions());
  const auto drl_result = core::evaluate(env, drl);
  const auto max_result = core::evaluate(env, *stat);
  std::cout << "== greedy DRL vs static-max (one episode) ==\n";
  std::cout << "DRL    : latency=" << drl_result.mean_latency
            << " power=" << drl_result.mean_power_mw
            << "mW reward=" << drl_result.total_reward << '\n';
  std::cout << "static : latency=" << max_result.mean_latency
            << " power=" << max_result.mean_power_mw
            << "mW reward=" << max_result.total_reward << '\n';
  return 0;
}
