// Example: spatially heterogeneous (per-router) configuration — the
// extension hook for per-region self-configuration. Under hotspot traffic,
// provisioning only the hotspot quadrant at full capability recovers most of
// the latency of a fully provisioned NoC at a fraction of its static power.
//
//   ./build/examples/region_config rate=0.08
#include <iostream>

#include "noc/network.h"
#include "noc/workload.h"
#include "util/config.h"
#include "util/table.h"

using namespace drlnoc;

namespace {

struct Outcome {
  double latency;
  double p95;
  double power;
  double accepted;
};

Outcome run(const std::vector<noc::NocConfig>& configs, double rate,
            std::uint64_t seed) {
  noc::NetworkParams p;
  p.width = p.height = 8;
  p.seed = seed;
  noc::Network net(p);
  if (!configs.empty()) net.apply_per_router(configs);
  noc::SteadyWorkload w =
      noc::SteadyWorkload::make(net.topology(), "hotspot", rate);
  net.run_epoch(&w, 2000);  // warm-up window, discarded
  const noc::EpochStats s = net.run_epoch(&w, 6000);
  return {s.avg_latency, s.p95_latency, s.avg_power_mw(2.0),
          s.accepted_rate};
}

}  // namespace

int main(int argc, char** argv) {
  const util::Config cfg = util::Config::from_args(argc, argv);
  // Hotspot ejection bandwidth caps sustainable load near 0.03 on an 8x8
  // mesh (4 hotspots x 50% targeted traffic); stay below the knee.
  const double rate = cfg.get("rate", 0.02);
  const std::uint64_t seed = 9;
  const int n = 64;

  const noc::NocConfig lean{1, 2, 3};
  const noc::NocConfig full{4, 8, 3};

  // The default hotspot block on an 8x8 mesh sits around the grid centre
  // (nodes (3,3)..(4,4)); provision a 4x4 region around it.
  std::vector<noc::NocConfig> region(n, lean);
  for (int y = 2; y <= 5; ++y) {
    for (int x = 2; x <= 5; ++x) {
      region[static_cast<std::size_t>(y * 8 + x)] = full;
    }
  }

  util::Table t({"provisioning", "latency", "p95", "power_mW", "accepted"});
  const Outcome all_full = run(std::vector<noc::NocConfig>(n, full), rate, seed);
  const Outcome all_lean = run(std::vector<noc::NocConfig>(n, lean), rate, seed);
  const Outcome hotspot_region = run(region, rate, seed);

  auto add = [&](const char* label, const Outcome& o) {
    t.row()
        .cell(label)
        .cell(o.latency, 1)
        .cell(o.p95, 1)
        .cell(o.power, 1)
        .cell(o.accepted, 4);
  };
  add("uniform full (static-max)", all_full);
  add("hotspot region full, rest lean", hotspot_region);
  add("uniform lean (static-min @ top clock)", all_lean);
  t.print(std::cout);

  std::cout << "\nregion power saving vs full: "
            << util::fmt(100.0 * (1.0 - hotspot_region.power / all_full.power), 1)
            << "%  |  latency cost: "
            << util::fmt(hotspot_region.latency - all_full.latency, 1)
            << " cycles\n"
            << "Per-region configs use Network::apply_per_router(); VC "
               "gating follows each link's *downstream* router.\n";
  return 0;
}
