// Example: the trace & task-graph workload subsystem end to end —
// generate a DNN layer-pipeline task graph, round-trip it through the
// .drltrc text format, replay it with dependency-aware injection at two
// clock configurations (watch congestion feed back into injection times),
// and finally record a live synthetic run and replay it bit-exactly.
//
//   ./build/examples/trace_workload
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>

#include "noc/workload.h"
#include "trace/generators.h"
#include "trace/recorder.h"
#include "trace/trace_io.h"
#include "trace/trace_workload.h"
#include "util/table.h"

using namespace drlnoc;

namespace {

trace::TraceReplayResult replay(const noc::NetworkParams& p,
                                std::shared_ptr<const trace::Trace> t,
                                double rate_scale) {
  noc::Network net(p);
  trace::TraceWorkloadParams tw;
  tw.rate_scale = rate_scale;
  trace::TraceWorkload w(std::move(t), tw);
  return trace::run_trace_replay(net, w, 2000000);
}

}  // namespace

int main() {
  // 1. Generate a task graph: a 4-stage DNN pipeline on a 4x4 mesh.
  trace::DnnPipelineParams dp;
  dp.nodes = 16;
  dp.layers = 4;
  dp.tiles_per_layer = 4;
  dp.batches = 3;
  trace::Trace generated = trace::generate_dnn_pipeline(dp);
  const trace::TraceSummary sum = generated.summary();
  std::cout << "1. generated DNN pipeline: " << sum.records << " records, "
            << sum.roots << " roots, " << sum.dep_edges << " dep edges\n";

  // 2. Round-trip through the text format: what tracectl convert does.
  std::stringstream text;
  trace::TraceWriter::write_text(text, generated);
  const trace::Trace reloaded = trace::TraceReader::read_text(text);
  std::cout << "2. text round-trip: "
            << (reloaded == generated ? "bit-exact" : "MISMATCH!") << " ("
            << text.str().size() << " bytes)\n\n";

  // 3. Dependency-aware replay: the same task graph on a fast and a slow
  //    fabric. Downstream layers inject only after their inputs are
  //    *delivered*, so the slow clock stretches the whole pipeline --
  //    simulated congestion feeds back into injection timing.
  const auto shared =
      std::make_shared<const trace::Trace>(std::move(generated));
  noc::NetworkParams fast;
  fast.width = fast.height = 4;
  noc::NetworkParams slow = fast;
  slow.initial_config.dvfs_level = 0;  // slowest clock
  util::Table t({"fabric", "core_cycles", "avg_lat", "p95_lat", "complete"});
  for (const auto& [name, params] : {std::pair{"fast (dvfs=3)", fast},
                                     std::pair{"slow (dvfs=0)", slow}}) {
    const trace::TraceReplayResult r = replay(params, shared, 1.0);
    t.row()
        .cell(name)
        .cell(r.stats.core_cycles, 0)
        .cell(r.stats.avg_latency, 1)
        .cell(r.stats.p95_latency, 1)
        .cell(r.completed ? "yes" : "no");
  }
  std::cout << "3. dependency feedback under two clock configurations:\n";
  t.print(std::cout);
  std::cout << "   (a timed-only replay would inject identically on both)\n\n";

  // 4. Record -> replay: capture a synthetic run into a trace, replay it,
  //    and compare the delivered-packet streams.
  noc::NetworkParams p;
  p.width = p.height = 4;
  p.seed = 77;
  noc::Network original(p);
  noc::SteadyWorkload synth =
      noc::SteadyWorkload::make(original.topology(), "hotspot", 0.08);
  for (int i = 0; i < 1500; ++i) original.step(&synth);
  for (int i = 0; i < 20000 && !original.drained(); ++i)
    original.step(nullptr);
  trace::TraceRecorder recorder(original.num_nodes());
  recorder.capture(original);
  const auto capture = std::make_shared<const trace::Trace>(recorder.build());

  noc::Network replayed(p);
  trace::TraceWorkload rw(capture);
  const trace::TraceReplayResult rr = trace::run_trace_replay(replayed, rw);
  std::cout << "4. record -> replay: captured " << capture->records.size()
            << " packets, replay delivered " << rr.stats.packets_received
            << " (avg latency " << util::fmt(rr.stats.avg_latency, 2)
            << " both runs: replay is bit-exact, see tests/trace_test.cpp)\n";

  // 5. Files on disk: the tracectl workflow.
  trace::TraceWriter::write_file("example_capture.drltrb", *capture);
  std::cout << "5. wrote example_capture.drltrb -- inspect it with:\n"
               "   ./build/tools/tracectl info file=example_capture.drltrb "
               "show=5\n";
  return 0;
}
