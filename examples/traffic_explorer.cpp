// Example: exploring the simulator substrate directly — sweep traffic
// patterns on a chosen topology and print latency/throughput/power, without
// any RL involvement. Useful to understand the network the controller rides.
//
//   ./build/examples/traffic_explorer topology=torus size=8 rate=0.08 --jobs 4
#include <iostream>
#include <optional>
#include <vector>

#include "noc/simulator.h"
#include "util/config.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace drlnoc;

int main(int argc, char** argv) {
  const util::Config cfg = util::Config::from_args(argc, argv);
  const std::string topology = cfg.get("topology", std::string("mesh"));
  const int size = cfg.get("size", 8);
  const double rate = cfg.get("rate", 0.05);
  const int jobs = util::ThreadPool::resolve_jobs(cfg.get("jobs", 0));

  noc::NetworkParams p;
  p.topology = topology;
  p.width = p.height = size;
  p.seed = cfg.get("seed", 1);
  p.routing = cfg.get("routing", std::string("auto"));

  std::cout << "traffic explorer: " << topology << " " << size << "x" << size
            << ", rate " << rate << " pkt/node/cycle, routing " << p.routing
            << ", jobs " << jobs << "\n\n";

  // All patterns are measured concurrently; a pattern the topology rejects
  // (e.g. transpose on a ring) reports its error in the table instead of
  // aborting the sweep.
  const std::vector<const char*> patterns = {
      "uniform", "transpose", "bitcomp", "bitrev",
      "shuffle", "tornado",   "neighbor", "hotspot"};
  struct PatternRow {
    std::optional<noc::SteadyResult> result;
    std::string error;
  };
  const auto rows = util::parallel_map<PatternRow>(
      static_cast<int>(patterns.size()), jobs, [&](int i) {
        PatternRow row;
        try {
          row.result = noc::measure_point(
              p, patterns[static_cast<std::size_t>(i)], rate);
        } catch (const std::exception& e) {
          row.error = e.what();
        }
        return row;
      });

  util::Table t({"pattern", "avg_lat", "p95_lat", "avg_hops", "accepted",
                 "power_mW", "saturated"});
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    if (!rows[i].result) {
      t.row().cell(patterns[i]).cell("n/a: " + rows[i].error);
      continue;
    }
    const auto& r = *rows[i].result;
    t.row()
        .cell(patterns[i])
        .cell(r.stats.avg_latency, 1)
        .cell(r.stats.p95_latency, 1)
        .cell(r.stats.avg_hops, 2)
        .cell(r.stats.accepted_rate, 4)
        .cell(r.stats.avg_power_mw(2.0), 1)
        .cell(r.saturated ? "yes" : "no");
  }
  t.print(std::cout);
  std::cout << "\nlocal patterns (neighbor) ride cheap; adversarial ones "
               "(transpose/tornado) pay in hops and saturate earlier.\n";
  return 0;
}
