// Example: exploring the simulator substrate directly — sweep traffic
// patterns on a chosen topology and print latency/throughput/power, without
// any RL involvement. Useful to understand the network the controller rides.
//
//   ./build/examples/traffic_explorer topology=torus size=8 rate=0.08 --jobs 4
//   ./build/examples/traffic_explorer --workload trace=app.drltrc scale=2
//   ./build/examples/traffic_explorer --workload phased=0.8
//   ./build/examples/traffic_explorer --workload scenario=mix.drlsc
//
// Deterministic fault injection rides along on every mode:
//   fault_rate=0.01 fault_seed=7 fault_timeout=64 fault_backoff=2
//   fault_budget=4 fault_link=5:1,9:2   (kill links 5->E and 9->W at cycle 0)
//
// Observability (single-run --workload modes; see docs/OBSERVABILITY.md):
//   --trace-out=trace.json --metrics-out=metrics.json --trace-sample=0.1
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "noc/simulator.h"
#include "obs/session.h"
#include "scenario/runtime.h"
#include "scenario/scenario_io.h"
#include "trace/trace_io.h"
#include "trace/trace_workload.h"
#include "util/config.h"
#include "util/log.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace drlnoc;

namespace {

/// `fault_rate=P fault_seed=S fault_timeout=N fault_backoff=B
/// fault_budget=N fault_link=NODE:PORT`: deterministic fault injection on
/// every explored run. fault_link= kills one directed link at cycle 0 (may
/// repeat as a comma list); the resulting config is validated against the
/// topology before any run starts.
noc::FaultParams fault_params_from(const util::Config& cfg) {
  noc::FaultParams f;
  f.link_fault_rate = cfg.get("fault_rate", 0.0);
  f.seed = static_cast<std::uint64_t>(cfg.get("fault_seed", 1LL));
  const long long timeout = cfg.get("fault_timeout", 64LL);
  if (timeout < 1) {
    throw std::invalid_argument("fault_timeout must be >= 1");
  }
  f.retry_timeout = static_cast<noc::Cycle>(timeout);
  f.retry_backoff = cfg.get("fault_backoff", 2.0);
  f.retry_budget = cfg.get("fault_budget", 4);
  std::string links = cfg.get("fault_link", std::string());
  std::size_t start = 0;
  while (start < links.size()) {
    const std::size_t comma = links.find(',', start);
    const std::size_t end = comma == std::string::npos ? links.size() : comma;
    const std::string item = links.substr(start, end - start);
    const std::size_t colon = item.find(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == item.size()) {
      throw std::invalid_argument("fault_link expects NODE:PORT, got '" +
                                  item + "'");
    }
    noc::FaultEvent ev;
    ev.kind = noc::FaultEvent::Kind::kLinkDown;
    ev.at_cycle = 0;
    ev.node = std::stoi(item.substr(0, colon));
    ev.port = std::stoi(item.substr(colon + 1));
    f.events.push_back(ev);
    start = comma == std::string::npos ? links.size() : comma + 1;
  }
  f.validate();
  return f;
}

/// `--workload trace=<file>`: replay an application trace on the chosen
/// topology, with `scale=` mapped to the rate-scaling knob.
int explore_trace(const noc::NetworkParams& p, const std::string& path,
                  const util::Config& cfg, const noc::FaultParams& faults,
                  obs::ObsSession& session) {
  const auto t =
      std::make_shared<const trace::Trace>(trace::TraceReader::read_file(path));
  if (p.width * p.height < t->nodes) {
    LOG_ERROR << "trace needs " << t->nodes << " nodes, network has "
              << p.width * p.height << " (raise size=)";
    return 1;
  }
  trace::TraceWorkloadParams tw;
  tw.rate_scale = cfg.get("scale", 1.0);
  noc::Network net(p);
  if (faults.enabled()) net.set_fault_model(faults);
  session.attach(net);
  trace::TraceWorkload w(t, tw);
  const auto limit =
      static_cast<std::uint64_t>(cfg.get("cycle_limit", 2000000LL));
  const trace::TraceReplayResult r = trace::run_trace_replay(net, w, limit);
  util::Table tab({"workload", "avg_lat", "p95_lat", "avg_hops", "packets",
                   "core_cycles", "power_mW", "complete"});
  tab.row()
      .cell(w.name())
      .cell(r.stats.avg_latency, 1)
      .cell(r.stats.p95_latency, 1)
      .cell(r.stats.avg_hops, 2)
      .cell(static_cast<long long>(r.stats.packets_received))
      .cell(r.stats.core_cycles, 0)
      .cell(r.stats.avg_power_mw(2.0), 1)
      .cell(r.completed ? "yes" : "NO");
  tab.print(std::cout);
  std::cout << "\ndependency-gated records inject only after their "
               "predecessors deliver; raise scale= to stress the fabric.\n";
  return r.completed ? 0 : 1;
}

/// `--workload scenario=<file>`: run a multi-tenant `.drlsc` scenario on its
/// own fabric (the scenario carries its topology; size=/topology= flags are
/// ignored) and print aggregate plus per-tenant metrics.
int explore_scenario(const std::string& path, const noc::FaultParams& faults,
                     obs::ObsSession& session) {
  scenario::Scenario s = scenario::ScenarioReader::read_file(path);
  if (faults.enabled()) {
    // Command-line faults replace the scenario's own [faults] section for
    // this run; the merged scenario is re-validated before the run starts.
    s.faults = faults;
  }
  s.validate();
  auto net = scenario::build_network(s);
  auto workload = scenario::build_workload(s, net->topology());
  session.attach(*net);
  session.annotate_scenario(s);
  scenario::ScenarioRunParams rp;
  rp.cycle_limit = s.cycle_limit;
  rp.duration = s.duration;
  const scenario::ScenarioRunResult r =
      scenario::run_scenario(*net, *workload, rp);
  std::cout << "scenario '" << s.name << "' on " << s.net.topology << " "
            << s.net.width << "x" << s.net.height
            << (r.completed ? "" : "  [HIT CYCLE LIMIT]") << "\n";
  util::Table tab({"tenant", "offered", "delivered", "avg_lat", "p95_lat",
                   "thru(pkt/node/cyc)", "energy_pJ"});
  for (const scenario::TenantReport& t :
       scenario::tenant_reports(s, r.stats)) {
    tab.row()
        .cell(t.name)
        .cell(static_cast<long long>(t.packets_offered))
        .cell(static_cast<long long>(t.packets_received))
        .cell(t.avg_latency, 1)
        .cell(t.p95_latency, 1)
        .cell(t.throughput, 5)
        .cell(t.energy_share_pj, 1);
  }
  tab.print(std::cout);
  std::cout << "\ntenants share one fabric; per-tenant latency shows who "
               "pays for the interference.\n";
  return r.completed ? 0 : 1;
}

/// `--workload phased[=scale]`: one steady-state run of the canonical
/// 4-phase workload (parity with trace exploration).
int explore_phased(const noc::NetworkParams& p, const std::string& arg,
                   const util::Config& cfg, const noc::FaultParams& faults,
                   obs::ObsSession& session) {
  const double phase_scale = arg.empty() ? cfg.get("scale", 1.0)
                                         : std::stod(arg);
  noc::Network net(p);
  if (faults.enabled()) net.set_fault_model(faults);
  session.attach(net);
  noc::PhasedWorkload w(net.topology(),
                        noc::PhasedWorkload::standard_phases(net.topology(),
                                                             phase_scale));
  noc::SteadyRunParams run;
  run.warmup_cycles = 2000;
  run.measure_cycles = static_cast<std::uint64_t>(w.total_duration());
  const noc::SteadyResult r = noc::run_steady_state(net, w, run);
  util::Table tab({"workload", "avg_lat", "p95_lat", "avg_hops", "accepted",
                   "power_mW", "saturated"});
  tab.row()
      .cell("phased x" + util::fmt(phase_scale, 2))
      .cell(r.stats.avg_latency, 1)
      .cell(r.stats.p95_latency, 1)
      .cell(r.stats.avg_hops, 2)
      .cell(r.stats.accepted_rate, 4)
      .cell(r.stats.avg_power_mw(2.0), 1)
      .cell(r.saturated ? "yes" : "no");
  tab.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Config cfg = util::Config::from_args(argc, argv);
  util::init_log(cfg.get("log", std::string()));
  const std::string topology = cfg.get("topology", std::string("mesh"));
  const int size = cfg.get("size", 8);
  const double rate = cfg.get("rate", 0.05);
  const int jobs = util::ThreadPool::resolve_jobs(cfg.get("jobs", 0));

  noc::NetworkParams p;
  p.topology = topology;
  p.width = p.height = size;
  p.seed = cfg.get("seed", 1);
  p.routing = cfg.get("routing", std::string("auto"));

  const noc::FaultParams faults = fault_params_from(cfg);

  std::cout << "traffic explorer: " << topology << " " << size << "x" << size
            << ", rate " << rate << " pkt/node/cycle, routing " << p.routing
            << ", jobs " << jobs;
  if (faults.enabled()) {
    std::cout << ", faults on (rate " << faults.link_fault_rate << ", "
              << faults.events.size() << " link events)";
  }
  std::cout << "\n\n";

  // Application-level workloads: `--workload trace=<file>` replays a trace
  // (see src/trace/), `--workload scenario=<file>` runs a multi-tenant
  // scenario (see src/scenario/), `--workload phased[=scale]` runs the
  // canonical phased workload. Default (no flag): the pattern sweep below.
  // Observability: --trace-out= / --metrics-out= / --trace-sample= apply to
  // the single-run workload modes below; the parallel pattern sweep runs
  // untraced (one recorder cannot span concurrent fabrics).
  obs::ObsSession session(obs::ObsOptions::from_config(cfg));
  if (cfg.has("workload")) {
    const std::string w = cfg.get("workload", std::string());
    int rc = -1;
    try {
      if (w.rfind("trace=", 0) == 0) {
        rc = explore_trace(p, w.substr(6), cfg, faults, session);
      } else if (w.rfind("scenario=", 0) == 0) {
        rc = explore_scenario(w.substr(9), faults, session);
      } else if (w == "phased" || w.rfind("phased=", 0) == 0) {
        rc = explore_phased(p, w == "phased" ? "" : w.substr(7), cfg, faults,
                            session);
      }
    } catch (const std::exception& e) {
      LOG_ERROR << "workload error: " << e.what();
      return 1;
    }
    if (rc < 0) {
      LOG_ERROR << "unknown workload '" << w
                << "' (expected trace=<file>, scenario=<file> or "
                   "phased[=scale])";
      return 1;
    }
    if (!session.finish() && rc == 0) rc = 1;
    return rc;
  }
  if (session.enabled()) {
    // Hard error, not a warning: the parallel pattern sweep cannot attach
    // the single-threaded observability taps, and silently dropping a
    // requested artifact has proven easy to miss in scripted runs.
    LOG_ERROR << "traffic_explorer: --trace-out/--metrics-out cannot observe "
                 "the parallel pattern sweep; pick a --workload mode "
                 "(trace=, scenario=, phased) to capture artifacts";
    return 2;
  }

  // All patterns are measured concurrently; a pattern the topology rejects
  // (e.g. transpose on a ring) reports its error in the table instead of
  // aborting the sweep.
  const std::vector<const char*> patterns = {
      "uniform", "transpose", "bitcomp", "bitrev",
      "shuffle", "tornado",   "neighbor", "hotspot"};
  struct PatternRow {
    std::optional<noc::SteadyResult> result;
    std::string error;
  };
  const auto rows = util::parallel_map<PatternRow>(
      static_cast<int>(patterns.size()), jobs, [&](int i) {
        PatternRow row;
        try {
          row.result = noc::measure_point(
              p, patterns[static_cast<std::size_t>(i)], rate,
              noc::SteadyRunParams{}, faults);
        } catch (const std::exception& e) {
          row.error = e.what();
        }
        return row;
      });

  util::Table t({"pattern", "avg_lat", "p95_lat", "avg_hops", "accepted",
                 "power_mW", "saturated"});
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    if (!rows[i].result) {
      t.row().cell(patterns[i]).cell("n/a: " + rows[i].error);
      continue;
    }
    const auto& r = *rows[i].result;
    t.row()
        .cell(patterns[i])
        .cell(r.stats.avg_latency, 1)
        .cell(r.stats.p95_latency, 1)
        .cell(r.stats.avg_hops, 2)
        .cell(r.stats.accepted_rate, 4)
        .cell(r.stats.avg_power_mw(2.0), 1)
        .cell(r.saturated ? "yes" : "no");
  }
  t.print(std::cout);
  std::cout << "\nlocal patterns (neighbor) ride cheap; adversarial ones "
               "(transpose/tornado) pay in hops and saturate earlier.\n";
  return 0;
}
