// Example: exploring the simulator substrate directly — sweep traffic
// patterns on a chosen topology and print latency/throughput/power, without
// any RL involvement. Useful to understand the network the controller rides.
//
//   ./build/examples/traffic_explorer topology=torus size=8 rate=0.08
#include <iostream>

#include "noc/simulator.h"
#include "util/config.h"
#include "util/table.h"

using namespace drlnoc;

int main(int argc, char** argv) {
  const util::Config cfg = util::Config::from_args(argc, argv);
  const std::string topology = cfg.get("topology", std::string("mesh"));
  const int size = cfg.get("size", 8);
  const double rate = cfg.get("rate", 0.05);

  noc::NetworkParams p;
  p.topology = topology;
  p.width = p.height = size;
  p.seed = cfg.get("seed", 1);
  p.routing = cfg.get("routing", std::string("auto"));

  std::cout << "traffic explorer: " << topology << " " << size << "x" << size
            << ", rate " << rate << " pkt/node/cycle, routing " << p.routing
            << "\n\n";

  util::Table t({"pattern", "avg_lat", "p95_lat", "avg_hops", "accepted",
                 "power_mW", "saturated"});
  for (const char* pattern : {"uniform", "transpose", "bitcomp", "bitrev",
                              "shuffle", "tornado", "neighbor", "hotspot"}) {
    try {
      const auto r = noc::measure_point(p, pattern, rate);
      t.row()
          .cell(pattern)
          .cell(r.stats.avg_latency, 1)
          .cell(r.stats.p95_latency, 1)
          .cell(r.stats.avg_hops, 2)
          .cell(r.stats.accepted_rate, 4)
          .cell(r.stats.avg_power_mw(2.0), 1)
          .cell(r.saturated ? "yes" : "no");
    } catch (const std::exception& e) {
      t.row().cell(pattern).cell(std::string("n/a: ") + e.what());
    }
  }
  t.print(std::cout);
  std::cout << "\nlocal patterns (neighbor) ride cheap; adversarial ones "
               "(transpose/tornado) pay in hops and saturate earlier.\n";
  return 0;
}
