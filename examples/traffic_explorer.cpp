// Example: exploring the simulator substrate directly — sweep traffic
// patterns on a chosen topology and print latency/throughput/power, without
// any RL involvement. Useful to understand the network the controller rides.
//
//   ./build/examples/traffic_explorer topology=torus size=8 rate=0.08 --jobs 4
//   ./build/examples/traffic_explorer --workload trace=app.drltrc scale=2
//   ./build/examples/traffic_explorer --workload phased=0.8
//   ./build/examples/traffic_explorer --workload scenario=mix.drlsc
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "noc/simulator.h"
#include "scenario/runtime.h"
#include "scenario/scenario_io.h"
#include "trace/trace_io.h"
#include "trace/trace_workload.h"
#include "util/config.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace drlnoc;

namespace {

/// `--workload trace=<file>`: replay an application trace on the chosen
/// topology, with `scale=` mapped to the rate-scaling knob.
int explore_trace(const noc::NetworkParams& p, const std::string& path,
                  const util::Config& cfg) {
  const auto t =
      std::make_shared<const trace::Trace>(trace::TraceReader::read_file(path));
  if (p.width * p.height < t->nodes) {
    std::cerr << "trace needs " << t->nodes << " nodes, network has "
              << p.width * p.height << " (raise size=)\n";
    return 1;
  }
  trace::TraceWorkloadParams tw;
  tw.rate_scale = cfg.get("scale", 1.0);
  noc::Network net(p);
  trace::TraceWorkload w(t, tw);
  const auto limit =
      static_cast<std::uint64_t>(cfg.get("cycle_limit", 2000000LL));
  const trace::TraceReplayResult r = trace::run_trace_replay(net, w, limit);
  util::Table tab({"workload", "avg_lat", "p95_lat", "avg_hops", "packets",
                   "core_cycles", "power_mW", "complete"});
  tab.row()
      .cell(w.name())
      .cell(r.stats.avg_latency, 1)
      .cell(r.stats.p95_latency, 1)
      .cell(r.stats.avg_hops, 2)
      .cell(static_cast<long long>(r.stats.packets_received))
      .cell(r.stats.core_cycles, 0)
      .cell(r.stats.avg_power_mw(2.0), 1)
      .cell(r.completed ? "yes" : "NO");
  tab.print(std::cout);
  std::cout << "\ndependency-gated records inject only after their "
               "predecessors deliver; raise scale= to stress the fabric.\n";
  return r.completed ? 0 : 1;
}

/// `--workload scenario=<file>`: run a multi-tenant `.drlsc` scenario on its
/// own fabric (the scenario carries its topology; size=/topology= flags are
/// ignored) and print aggregate plus per-tenant metrics.
int explore_scenario(const std::string& path) {
  const scenario::Scenario s = scenario::ScenarioReader::read_file(path);
  const scenario::ScenarioRunResult r = scenario::run_scenario(s);
  std::cout << "scenario '" << s.name << "' on " << s.net.topology << " "
            << s.net.width << "x" << s.net.height
            << (r.completed ? "" : "  [HIT CYCLE LIMIT]") << "\n";
  util::Table tab({"tenant", "offered", "delivered", "avg_lat", "p95_lat",
                   "thru(pkt/node/cyc)", "energy_pJ"});
  for (const scenario::TenantReport& t :
       scenario::tenant_reports(s, r.stats)) {
    tab.row()
        .cell(t.name)
        .cell(static_cast<long long>(t.packets_offered))
        .cell(static_cast<long long>(t.packets_received))
        .cell(t.avg_latency, 1)
        .cell(t.p95_latency, 1)
        .cell(t.throughput, 5)
        .cell(t.energy_share_pj, 1);
  }
  tab.print(std::cout);
  std::cout << "\ntenants share one fabric; per-tenant latency shows who "
               "pays for the interference.\n";
  return r.completed ? 0 : 1;
}

/// `--workload phased[=scale]`: one steady-state run of the canonical
/// 4-phase workload (parity with trace exploration).
int explore_phased(const noc::NetworkParams& p, const std::string& arg,
                   const util::Config& cfg) {
  const double phase_scale = arg.empty() ? cfg.get("scale", 1.0)
                                         : std::stod(arg);
  noc::Network net(p);
  noc::PhasedWorkload w(net.topology(),
                        noc::PhasedWorkload::standard_phases(net.topology(),
                                                             phase_scale));
  noc::SteadyRunParams run;
  run.warmup_cycles = 2000;
  run.measure_cycles = static_cast<std::uint64_t>(w.total_duration());
  const noc::SteadyResult r = noc::run_steady_state(net, w, run);
  util::Table tab({"workload", "avg_lat", "p95_lat", "avg_hops", "accepted",
                   "power_mW", "saturated"});
  tab.row()
      .cell("phased x" + util::fmt(phase_scale, 2))
      .cell(r.stats.avg_latency, 1)
      .cell(r.stats.p95_latency, 1)
      .cell(r.stats.avg_hops, 2)
      .cell(r.stats.accepted_rate, 4)
      .cell(r.stats.avg_power_mw(2.0), 1)
      .cell(r.saturated ? "yes" : "no");
  tab.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Config cfg = util::Config::from_args(argc, argv);
  const std::string topology = cfg.get("topology", std::string("mesh"));
  const int size = cfg.get("size", 8);
  const double rate = cfg.get("rate", 0.05);
  const int jobs = util::ThreadPool::resolve_jobs(cfg.get("jobs", 0));

  noc::NetworkParams p;
  p.topology = topology;
  p.width = p.height = size;
  p.seed = cfg.get("seed", 1);
  p.routing = cfg.get("routing", std::string("auto"));

  std::cout << "traffic explorer: " << topology << " " << size << "x" << size
            << ", rate " << rate << " pkt/node/cycle, routing " << p.routing
            << ", jobs " << jobs << "\n\n";

  // Application-level workloads: `--workload trace=<file>` replays a trace
  // (see src/trace/), `--workload scenario=<file>` runs a multi-tenant
  // scenario (see src/scenario/), `--workload phased[=scale]` runs the
  // canonical phased workload. Default (no flag): the pattern sweep below.
  if (cfg.has("workload")) {
    const std::string w = cfg.get("workload", std::string());
    try {
      if (w.rfind("trace=", 0) == 0) {
        return explore_trace(p, w.substr(6), cfg);
      }
      if (w.rfind("scenario=", 0) == 0) {
        return explore_scenario(w.substr(9));
      }
      if (w == "phased" || w.rfind("phased=", 0) == 0) {
        return explore_phased(p, w == "phased" ? "" : w.substr(7), cfg);
      }
    } catch (const std::exception& e) {
      std::cerr << "workload error: " << e.what() << "\n";
      return 1;
    }
    std::cerr << "unknown workload '" << w
              << "' (expected trace=<file>, scenario=<file> or "
                 "phased[=scale])\n";
    return 1;
  }

  // All patterns are measured concurrently; a pattern the topology rejects
  // (e.g. transpose on a ring) reports its error in the table instead of
  // aborting the sweep.
  const std::vector<const char*> patterns = {
      "uniform", "transpose", "bitcomp", "bitrev",
      "shuffle", "tornado",   "neighbor", "hotspot"};
  struct PatternRow {
    std::optional<noc::SteadyResult> result;
    std::string error;
  };
  const auto rows = util::parallel_map<PatternRow>(
      static_cast<int>(patterns.size()), jobs, [&](int i) {
        PatternRow row;
        try {
          row.result = noc::measure_point(
              p, patterns[static_cast<std::size_t>(i)], rate);
        } catch (const std::exception& e) {
          row.error = e.what();
        }
        return row;
      });

  util::Table t({"pattern", "avg_lat", "p95_lat", "avg_hops", "accepted",
                 "power_mW", "saturated"});
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    if (!rows[i].result) {
      t.row().cell(patterns[i]).cell("n/a: " + rows[i].error);
      continue;
    }
    const auto& r = *rows[i].result;
    t.row()
        .cell(patterns[i])
        .cell(r.stats.avg_latency, 1)
        .cell(r.stats.p95_latency, 1)
        .cell(r.stats.avg_hops, 2)
        .cell(r.stats.accepted_rate, 4)
        .cell(r.stats.avg_power_mw(2.0), 1)
        .cell(r.saturated ? "yes" : "no");
  }
  t.print(std::cout);
  std::cout << "\nlocal patterns (neighbor) ride cheap; adversarial ones "
               "(transpose/tornado) pay in hops and saturate earlier.\n";
  return 0;
}
