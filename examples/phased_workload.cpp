// Example: build a custom phased workload (the motivating scenario of the
// paper — applications with distinct traffic phases), train a DRL controller
// on it, and print the configuration it chooses in each phase.
//
//   ./build/examples/phased_workload
//   ./build/examples/phased_workload episodes=200 size=8
#include <iostream>

#include "core/env_noc.h"
#include "core/trainer.h"
#include "rl/dqn.h"
#include "util/config.h"
#include "util/table.h"

using namespace drlnoc;

int main(int argc, char** argv) {
  const util::Config cfg = util::Config::from_args(argc, argv);
  const int size = cfg.get("size", 4);
  const int episodes = cfg.get("episodes", 120);

  // A hand-written application profile: long idle stretches, a compute
  // phase with all-to-all (uniform) communication, a reduction phase that
  // hammers one node (hotspot), and a stencil-like neighbor phase.
  core::NocEnvParams ep;
  ep.net.width = ep.net.height = size;
  ep.net.seed = 7;
  ep.phases = {
      {"uniform", 0.002, 5e3, "bernoulli"},   // idle / barrier wait
      {"uniform", 0.09, 5e3, "bernoulli"},    // all-to-all compute
      {"hotspot", 0.04, 5e3, "burst"},        // bursty reduction
      {"neighbor", 0.10, 5e3, "bernoulli"},   // stencil exchange
  };
  ep.epoch_cycles = 512;
  ep.epochs_per_episode = 44;
  core::NocConfigEnv env(ep);

  std::cout << "training DQN on the custom 4-phase application profile ("
            << episodes << " episodes, " << size << "x" << size
            << " mesh)...\n";
  rl::DqnParams dp;
  dp.epsilon_decay_steps =
      static_cast<std::uint64_t>(episodes) * 44 * 3 / 4;
  rl::DqnAgent agent(env.state_size(), env.num_actions(), dp);
  core::TrainParams tp;
  tp.episodes = episodes;
  tp.eval_every = 0;
  core::train_dqn(env, agent, tp);

  core::DrlController drl(env.actions(), agent);
  const auto result = core::evaluate(env, drl, /*keep_epochs=*/true);

  // Aggregate the chosen configuration per load regime.
  struct Bucket {
    const char* label;
    double lo, hi;
    double vcs = 0, depth = 0, dvfs = 0, power = 0, lat = 0;
    int n = 0;
  };
  std::vector<Bucket> buckets = {
      {"idle (<0.01)", 0.0, 0.01},
      {"moderate (0.01-0.06)", 0.01, 0.06},
      {"heavy (>0.06)", 0.06, 10.0},
  };
  for (const auto& s : result.epochs) {
    for (auto& b : buckets) {
      if (s.offered_rate >= b.lo && s.offered_rate < b.hi) {
        b.vcs += s.config.active_vcs;
        b.depth += s.config.active_depth;
        b.dvfs += s.config.dvfs_level;
        b.power += s.avg_power_mw(2.0);
        b.lat += s.avg_latency;
        ++b.n;
      }
    }
  }

  util::Table t({"load regime", "epochs", "mean_vcs", "mean_depth",
                 "mean_dvfs", "mean_power_mW", "mean_latency"});
  for (const auto& b : buckets) {
    if (b.n == 0) continue;
    t.row()
        .cell(b.label)
        .cell(static_cast<long long>(b.n))
        .cell(b.vcs / b.n, 2)
        .cell(b.depth / b.n, 2)
        .cell(b.dvfs / b.n, 2)
        .cell(b.power / b.n, 1)
        .cell(b.lat / b.n, 1);
  }
  std::cout << '\n';
  t.print(std::cout);
  std::cout << "\nepisode reward: " << result.total_reward
            << ", mean power: " << result.mean_power_mw << " mW\n"
            << "A well-trained controller provisions less in the idle "
               "regime than in the heavy one.\n";
  return 0;
}
